(* Optimizing one processor for an application mix.

   A network appliance spends 60% of its time scheduling packets (DRR)
   and 40% in control-plane arithmetic (Arith).  The two want opposite
   things: DRR wants 32 KB of dcache and no divider; Arith wants a tiny
   dcache and keeps the radix-2 divider.  Compare three
   recommendations: tuned for each alone and for the weighted mix.

   Run with:  dune exec examples/multi_app.exe                       *)

let () =
  let weights = Dse.Cost.runtime_weights in
  let mix = [ (Apps.Registry.drr, 0.6); (Apps.Registry.arith, 0.4) ] in

  Format.printf "Tuned for the 60/40 DRR/Arith mix:@.";
  let combined = Dse.Multiapp.optimize ~weights mix in
  Dse.Multiapp.print Format.std_formatter combined;

  let single app =
    let o = Dse.Optimizer.run ~weights app in
    o.Dse.Optimizer.config
  in
  let evaluate name config =
    let change app =
      let base = Apps.Registry.seconds app in
      100.0 *. (Apps.Registry.seconds ~config app -. base) /. base
    in
    let drr = change Apps.Registry.drr and arith = change Apps.Registry.arith in
    Format.printf "%-18s drr %+7.2f%%  arith %+7.2f%%  mix %+7.2f%%@." name drr
      arith ((0.6 *. drr) +. (0.4 *. arith))
  in
  Format.printf "@.Cross-evaluation:@.";
  evaluate "tuned for drr" (single Apps.Registry.drr);
  evaluate "tuned for arith" (single Apps.Registry.arith);
  evaluate "tuned for mix" combined.Dse.Multiapp.config
