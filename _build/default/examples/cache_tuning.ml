(* Cache tuning: the paper's Section 5 scaled-down study, on any of the
   four benchmarks.

   Compares the optimizer's data-cache recommendation (built from 8
   one-at-a-time measurements) against the true optimum found by
   exhaustively building all 28 ways x way-size geometries — the
   experiment that justifies the parameter-independence assumption.

   Run with:  dune exec examples/cache_tuning.exe [app]             *)

let () =
  let app =
    match Sys.argv with
    | [| _; name |] -> Apps.Registry.find name
    | _ -> Apps.Registry.drr
  in
  Format.printf "Data-cache tuning for %s@.@." app.Apps.Registry.name;

  (* Exhaustive baseline: 28 builds (the paper budgets 30 minutes of
     synthesis per build; our analytic model makes this instant). *)
  let points = Dse.Exhaustive.dcache_sweep app in
  Format.printf "%4s %8s %12s %6s %6s@." "ways" "KB/way" "runtime(s)" "LUT%"
    "BRAM%";
  List.iter
    (fun (p : Dse.Exhaustive.point) ->
      let d = p.Dse.Exhaustive.config.Arch.Config.dcache in
      match p.Dse.Exhaustive.cost with
      | None -> Format.printf "%4d %8d %12s  (does not fit)@." d.ways d.way_kb "-"
      | Some c ->
          Format.printf "%4d %8d %12.3f %5d%% %5d%%@." d.ways d.way_kb
            c.Dse.Cost.seconds
            (Synth.Resource.lut_percent_int c.Dse.Cost.resources)
            (Synth.Resource.bram_percent_int c.Dse.Cost.resources))
    points;

  let best = Dse.Exhaustive.best_runtime points in
  let bd = best.Dse.Exhaustive.config.Arch.Config.dcache in
  Format.printf "@.Exhaustive optimum: %d ways x %d KB@." bd.ways bd.way_kb;

  (* The optimizer, restricted to the same two dimensions, measuring
     only 8 configurations instead of 28. *)
  let outcome =
    Dse.Optimizer.run ~dims:Arch.Param.dcache_size_dims
      ~weights:Dse.Cost.runtime_only app
  in
  let od = outcome.Dse.Optimizer.config.Arch.Config.dcache in
  Format.printf "Optimizer pick:     %d ways x %d KB@." od.ways od.way_kb;

  match best.Dse.Exhaustive.cost with
  | Some c ->
      let gap =
        100.0
        *. (outcome.Dse.Optimizer.actual.Dse.Cost.seconds -. c.Dse.Cost.seconds)
        /. c.Dse.Cost.seconds
      in
      Format.printf
        "Runtime gap to the exhaustive optimum: %.3f%% (the paper found \
         0.02%% for BLASTN)@."
        gap
  | None -> ()
