(* Diagnostic tool: per-application execution statistics on the base
   configuration and a few interesting perturbations.  Used to calibrate
   workload sizes against the paper's runtime signatures. *)

let pr fmt = Format.printf fmt

let dcache_kb kb =
  { Arch.Config.base with
    dcache = { Arch.Config.base.Arch.Config.dcache with way_kb = kb } }

let with_iu f =
  { Arch.Config.base with Arch.Config.iu = f Arch.Config.base.Arch.Config.iu }

let selected_apps () =
  let known = Apps.Registry.all @ Apps.Extra.all in
  match List.tl (Array.to_list Sys.argv) with
  | [] -> Apps.Registry.all
  | names ->
      List.map
        (fun name ->
          match
            List.find_opt (fun a -> a.Apps.Registry.name = String.lowercase_ascii name) known
          with
          | Some a -> a
          | None ->
              Printf.eprintf "unknown app %S (known: %s)\n" name
                (String.concat ", " (List.map (fun a -> a.Apps.Registry.name) known));
              exit 2)
        names

let () =
  List.iter
    (fun app ->
      let prog = Lazy.force app.Apps.Registry.program in
      pr "=== %s (%d insns, %d B data, reps %d) ===@."
        app.Apps.Registry.name
        (Array.length prog.Isa.Program.code)
        (Bytes.length prog.Isa.Program.data)
        app.Apps.Registry.reps;
      let base_r = Apps.Registry.run app in
      let p = base_r.Sim.Machine.profile in
      pr "  base: cold=%d warm=%d checksum=%#x seconds=%.2f (paper %.2f)@."
        base_r.Sim.Machine.cold_cycles base_r.Sim.Machine.warm_cycles
        base_r.Sim.Machine.checksum
        (Sim.Machine.seconds base_r)
        app.Apps.Registry.paper_base_seconds;
      pr "  warm profile: %a@." Sim.Profiler.pp p;
      let show name config =
        let r = Apps.Registry.run ~config app in
        let d =
          100.0
          *. (Sim.Machine.seconds r -. Sim.Machine.seconds base_r)
          /. Sim.Machine.seconds base_r
        in
        pr "  %-18s %10.3f s  (%+.2f%%)@." name (Sim.Machine.seconds r) d
      in
      show "dcache 1KB" (dcache_kb 1);
      show "dcache 8KB" (dcache_kb 8);
      show "dcache 16KB" (dcache_kb 16);
      show "dcache 32KB" (dcache_kb 32);
      show "dcache 2x16KB"
        { Arch.Config.base with
          dcache = { Arch.Config.base.Arch.Config.dcache with ways = 2; way_kb = 16 } };
      show "icache 1KB"
        { Arch.Config.base with
          icache = { Arch.Config.base.Arch.Config.icache with way_kb = 1 } };
      show "icache 2KB"
        { Arch.Config.base with
          icache = { Arch.Config.base.Arch.Config.icache with way_kb = 2 } };
      show "line 4 (dcache)"
        { Arch.Config.base with
          dcache = { Arch.Config.base.Arch.Config.dcache with line_words = 4 } };
      show "mul 32x32" (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 }));
      show "mul iterative" (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_iterative }));
      show "no icc hold" (with_iu (fun u -> { u with Arch.Config.icc_hold = false }));
      show "no fast jump" (with_iu (fun u -> { u with Arch.Config.fast_jump = false }));
      show "no divider" (with_iu (fun u -> { u with Arch.Config.divider = Arch.Config.Div_none }));
      pr "@.")
    (selected_apps ())
