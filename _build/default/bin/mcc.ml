(* minic compiler driver.

     mcc prog.mc                 parse + check + compile, report sizes
     mcc prog.mc --disasm        print the generated assembly
     mcc prog.mc -o prog.img     write the binary program image
     mcc prog.img --run          load an image and simulate it
     mcc prog.mc --run           compile and simulate (base config)
     mcc prog.mc --run --stats   ... with the full cycle profile
     mcc prog.mc -O --run        compile with optimizations
     mcc prog.mc --run -c dc=1x32x4xrnd,mul=m32x32
                                 simulate on a tuned configuration     *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~optimize path =
  if Filename.check_suffix path ".img" then
    Isa.Encode.decode_program (Bytes.of_string (read_file path))
  else begin
    let src = read_file path in
    match Minic.Parser.parse src with
    | Error msg ->
        Printf.eprintf "%s: %s\n" path msg;
        exit 1
    | Ok ast -> (
        match Minic.Check.check ast with
        | Error es ->
            List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) es;
            exit 1
        | Ok () -> Minic.Codegen.compile ~optimize ast)
  end

let run source output disasm run stats optimize trace config =
  let config =
    match config with
    | None -> Arch.Config.base
    | Some s -> (
        match Arch.Codec.of_string s with
        | Ok c -> c
        | Error m ->
            Printf.eprintf "--config: %s\n" m;
            exit 1)
  in
  let prog = load ~optimize source in
  Format.printf "%s: %d instructions, %d bytes of data, %d symbols@." source
    (Array.length prog.Isa.Program.code)
    (Bytes.length prog.Isa.Program.data)
    (List.length prog.Isa.Program.symbols);
  (match output with
  | None -> ()
  | Some path ->
      let image = Isa.Encode.encode_program prog in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_bytes oc image);
      Format.printf "wrote %s (%d bytes)@." path (Bytes.length image));
  if disasm then Format.printf "%a@." Isa.Program.pp prog;
  (match trace with
  | None -> ()
  | Some n ->
      let cpu = Sim.Cpu.create config prog ~mem_size:(1 lsl 20) in
      Sim.Trace.pp Format.std_formatter (Sim.Trace.run ~limit:n cpu));
  if run then begin
    let cpu = Sim.Cpu.create config prog ~mem_size:(1 lsl 20) in
    (try Sim.Cpu.run cpu
     with Sim.Cpu.Error msg ->
       Printf.eprintf "simulation error: %s\n" msg;
       exit 1);
    let p = Sim.Cpu.profile cpu in
    Format.printf "result: %#x (%d cycles, %d instructions)@."
      (Sim.Cpu.result cpu) p.Sim.Profiler.cycles p.Sim.Profiler.instructions;
    if stats then Format.printf "%a@." Sim.Profiler.pp p
  end

let source_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SOURCE" ~doc:"minic source (.mc) or program image (.img)")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the binary program image to $(docv).")

let disasm_arg = Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the generated assembly.")
let run_arg = Arg.(value & flag & info [ "r"; "run" ] ~doc:"Simulate on the base configuration.")
let stats_arg = Arg.(value & flag & info [ "stats" ] ~doc:"With --run: print the full cycle profile.")
let optimize_arg = Arg.(value & flag & info [ "O"; "optimize" ] ~doc:"Run the source-level optimizer before code generation.")
let trace_arg = Arg.(value & opt (some int) None & info [ "trace" ] ~docv:"N" ~doc:"Trace the first $(docv) executed instructions with cycle deltas.")
let config_arg = Arg.(value & opt (some string) None & info [ "c"; "config" ] ~docv:"CFG" ~doc:"Microarchitecture configuration string (see reconfigure's output), e.g. dc=1x32x4xrnd,mul=m32x32.")

let cmd =
  let doc = "minic compiler and simulator driver" in
  Cmd.v
    (Cmd.info "mcc" ~version:"1.0.0" ~doc)
    Term.(const run $ source_arg $ output_arg $ disasm_arg $ run_arg $ stats_arg $ optimize_arg $ trace_arg $ config_arg)

let () = exit (Cmd.eval cmd)
