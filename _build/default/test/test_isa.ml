(* Tests for the ISA layer: register windows, assembler, programs. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Reg --- *)

let test_banks () =
  check_int "g0" 0 (Isa.Reg.g 0);
  check_int "o0" 8 (Isa.Reg.o 0);
  check_int "l0" 16 (Isa.Reg.l 0);
  check_int "i0" 24 (Isa.Reg.i 0);
  check_int "sp is o6" 14 Isa.Reg.sp;
  check_int "fp is i6" 30 Isa.Reg.fp;
  check_int "ra is o7" 15 Isa.Reg.ra

let test_globals_fixed () =
  for w = 0 to 7 do
    for r = 0 to 7 do
      check_int "globals ignore the window" r
        (Isa.Reg.physical ~nwindows:8 ~cwp:w (Isa.Reg.g r))
    done
  done

let test_window_overlap () =
  (* ins of window w = outs of window w+1, for every window. *)
  for nwin = 2 to 32 do
    for w = 0 to nwin - 1 do
      for r = 0 to 7 do
        check_int
          (Printf.sprintf "overlap nwin=%d w=%d r=%d" nwin w r)
          (Isa.Reg.physical ~nwindows:nwin ~cwp:w (Isa.Reg.i r))
          (Isa.Reg.physical ~nwindows:nwin ~cwp:((w + 1) mod nwin) (Isa.Reg.o r))
      done
    done
  done

let test_no_alias_within_window () =
  (* Within one window, the 24 windowed registers are distinct
     physical registers (plus 8 globals). *)
  let nwin = 8 and cwp = 3 in
  let seen = Hashtbl.create 32 in
  for r = 0 to 31 do
    let p = Isa.Reg.physical ~nwindows:nwin ~cwp r in
    check_bool (Printf.sprintf "no alias r%d" r) false (Hashtbl.mem seen p);
    Hashtbl.add seen p ()
  done

let test_locals_private () =
  (* Locals of distinct windows never collide. *)
  let nwin = 8 in
  let seen = Hashtbl.create 64 in
  for w = 0 to nwin - 1 do
    for r = 0 to 7 do
      let p = Isa.Reg.physical ~nwindows:nwin ~cwp:w (Isa.Reg.l r) in
      check_bool (Printf.sprintf "private l%d w%d" r w) false (Hashtbl.mem seen p);
      Hashtbl.add seen p ()
    done
  done

let test_file_size () =
  check_int "8 windows" (8 + (8 * 16)) (Isa.Reg.file_size ~nwindows:8);
  check_int "32 windows" (8 + (32 * 16)) (Isa.Reg.file_size ~nwindows:32)

let test_names () =
  Alcotest.(check string) "g0" "%g0" (Isa.Reg.name 0);
  Alcotest.(check string) "o6" "%o6" (Isa.Reg.name Isa.Reg.sp);
  Alcotest.(check string) "i7" "%i7" (Isa.Reg.name (Isa.Reg.i 7))

(* --- Insn classification --- *)

let test_icc_classes () =
  let cmp =
    Isa.Insn.Alu
      { op = Isa.Insn.Sub; cc = true; rd = 0; rs1 = Isa.Reg.o 0; op2 = Isa.Insn.Imm 1 }
  in
  check_bool "subcc sets icc" true (Isa.Insn.sets_icc cmp);
  check_bool "subcc does not read icc" false (Isa.Insn.uses_icc cmp);
  let be = Isa.Insn.Branch { cond = Isa.Insn.Eq; target = 0 } in
  check_bool "be reads icc" true (Isa.Insn.uses_icc be);
  let ba = Isa.Insn.Branch { cond = Isa.Insn.Always; target = 0 } in
  check_bool "ba does not read icc" false (Isa.Insn.uses_icc ba)

let test_writes_reads () =
  let ld =
    Isa.Insn.Load
      { width = Isa.Insn.Word; signed = false; rd = Isa.Reg.o 1;
        rs1 = Isa.Reg.o 2; op2 = Isa.Insn.Reg (Isa.Reg.o 3) }
  in
  check_bool "load writes rd" true (Isa.Insn.writes ld = Some (Isa.Reg.o 1));
  check_int "load reads two regs" 2 (List.length (Isa.Insn.reads ld));
  let to_g0 =
    Isa.Insn.Alu
      { op = Isa.Insn.Add; cc = false; rd = 0; rs1 = 0; op2 = Isa.Insn.Imm 1 }
  in
  check_bool "write to g0 is no write" true (Isa.Insn.writes to_g0 = None);
  let call = Isa.Insn.Call { target = 3 } in
  check_bool "call writes %o7" true (Isa.Insn.writes call = Some Isa.Reg.ra)

(* --- Asm --- *)

let test_labels_resolve () =
  let a = Isa.Asm.create () in
  Isa.Asm.ba a "end";
  Isa.Asm.label a "middle";
  Isa.Asm.emit a Isa.Insn.Nop;
  Isa.Asm.ba a "middle";
  Isa.Asm.label a "end";
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  (match p.Isa.Program.code.(0) with
  | Isa.Insn.Branch { target; _ } -> check_int "forward ref" 3 target
  | _ -> Alcotest.fail "expected branch");
  match p.Isa.Program.code.(2) with
  | Isa.Insn.Branch { target; _ } -> check_int "backward ref" 1 target
  | _ -> Alcotest.fail "expected branch"

let test_undefined_label () =
  let a = Isa.Asm.create () in
  Isa.Asm.ba a "nowhere";
  Alcotest.check_raises "undefined label"
    (Failure "Asm.finish: undefined label \"nowhere\"") (fun () ->
      ignore (Isa.Asm.finish a ~entry:0))

let test_duplicate_label () =
  let a = Isa.Asm.create () in
  Isa.Asm.label a "x";
  Alcotest.check_raises "duplicate label" (Failure "Asm.label: duplicate label \"x\"")
    (fun () -> Isa.Asm.label a "x")

let test_data_layout () =
  let a = Isa.Asm.create () in
  let w = Isa.Asm.data_words a ~name:"w" [| 1; 2; 3 |] in
  let b = Isa.Asm.data_bytes a ~name:"b" (Bytes.of_string "abc") in
  let z = Isa.Asm.data_zero a ~name:"z" 10 in
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  check_int "first symbol at data base" Isa.Program.data_base w;
  check_int "second symbol word-aligned after 12 bytes" (w + 12) b;
  check_int "third symbol aligned" (b + 4) z;
  check_int "symbol lookup" w (Isa.Program.symbol p "w");
  check_int "data length" (12 + 3 + 1 + 10) (Bytes.length p.Isa.Program.data);
  check_int "word content little-endian" 2
    (Char.code (Bytes.get p.Isa.Program.data 4))

let test_set32_small () =
  let a = Isa.Asm.create () in
  Isa.Asm.set32 a 42 (Isa.Reg.o 0);
  let p = Isa.Asm.finish a ~entry:0 in
  check_int "single instruction" 1 (Array.length p.Isa.Program.code)

let test_set32_large () =
  let a = Isa.Asm.create () in
  Isa.Asm.set32 a 0x12345678 (Isa.Reg.o 0);
  let p = Isa.Asm.finish a ~entry:0 in
  check_int "sethi + or" 2 (Array.length p.Isa.Program.code)

let test_symbol_not_found () =
  let a = Isa.Asm.create () in
  Isa.Asm.emit a Isa.Insn.Halt;
  let p = Isa.Asm.finish a ~entry:0 in
  Alcotest.check_raises "missing symbol" Not_found (fun () ->
      ignore (Isa.Program.symbol p "ghost"))

(* --- Encode/decode --- *)

let gen_insn =
  let open QCheck.Gen in
  let reg = int_range 0 31 in
  let operand =
    oneof
      [
        map (fun r -> Isa.Insn.Reg r) reg;
        map (fun v -> Isa.Insn.Imm v) (int_range (-4096) 4095);
      ]
  in
  let alu_op =
    oneofl
      [ Isa.Insn.Add; Isa.Insn.Sub; Isa.Insn.And; Isa.Insn.Or; Isa.Insn.Xor;
        Isa.Insn.Sll; Isa.Insn.Srl; Isa.Insn.Sra ]
  in
  let cond =
    oneofl
      [ Isa.Insn.Always; Isa.Insn.Eq; Isa.Insn.Ne; Isa.Insn.Gt; Isa.Insn.Le;
        Isa.Insn.Ge; Isa.Insn.Lt; Isa.Insn.Gu; Isa.Insn.Leu ]
  in
  let width = oneofl [ Isa.Insn.Byte; Isa.Insn.Half; Isa.Insn.Word ] in
  oneof
    [
      (alu_op >>= fun op -> bool >>= fun cc -> reg >>= fun rd -> reg >>= fun rs1 ->
       operand >>= fun op2 -> return (Isa.Insn.Alu { op; cc; rd; rs1; op2 }));
      (bool >>= fun signed -> bool >>= fun cc -> reg >>= fun rd -> reg >>= fun rs1 ->
       operand >>= fun op2 -> return (Isa.Insn.Mul { signed; cc; rd; rs1; op2 }));
      (bool >>= fun signed -> reg >>= fun rd -> reg >>= fun rs1 ->
       operand >>= fun op2 -> return (Isa.Insn.Div { signed; rd; rs1; op2 }));
      (width >>= fun width -> bool >>= fun signed -> reg >>= fun rd ->
       reg >>= fun rs1 -> operand >>= fun op2 ->
       let signed = if width = Isa.Insn.Word then false else signed in
       return (Isa.Insn.Load { width; signed; rd; rs1; op2 }));
      (width >>= fun width -> reg >>= fun rs -> reg >>= fun rs1 ->
       operand >>= fun op2 -> return (Isa.Insn.Store { width; rs; rs1; op2 }));
      (cond >>= fun cond -> int_range 0 0x3FFFFF >>= fun target ->
       return (Isa.Insn.Branch { cond; target }));
      map (fun target -> Isa.Insn.Call { target }) (int_range 0 0x3FFFFFF);
      (reg >>= fun rd -> reg >>= fun rs1 -> operand >>= fun op2 ->
       return (Isa.Insn.Jmpl { rd; rs1; op2 }));
      (reg >>= fun rd -> reg >>= fun rs1 -> operand >>= fun op2 ->
       return (Isa.Insn.Save { rd; rs1; op2 }));
      (reg >>= fun rd -> reg >>= fun rs1 -> operand >>= fun op2 ->
       return (Isa.Insn.Restore { rd; rs1; op2 }));
      (reg >>= fun rd -> int_range 0 0x1FFFFF >>= fun imm ->
       return (Isa.Insn.Sethi { rd; imm }));
      return Isa.Insn.Nop;
      return Isa.Insn.Halt;
    ]

let encode_roundtrip_qtest =
  QCheck.Test.make ~count:1000 ~name:"decode (encode insn) = insn"
    (QCheck.make ~print:Isa.Insn.to_string gen_insn)
    (fun insn -> Isa.Encode.decode (Isa.Encode.encode insn) = insn)

let test_encode_width () =
  (* Every instruction is exactly one 32-bit word, the assumption the
     icache model bakes in (byte address = 4 * index). *)
  let i = Isa.Insn.Call { target = 0x3FFFFFF } in
  check_bool "fits 32 bits" true
    (Int32.to_int (Isa.Encode.encode i) land 0xFFFFFFFF
    = Int32.to_int (Isa.Encode.encode i) land 0xFFFFFFFF)

let test_encode_range_errors () =
  let expect_err insn =
    match Isa.Encode.encode insn with
    | exception Isa.Encode.Error _ -> ()
    | _ -> Alcotest.fail "expected encode error"
  in
  expect_err (Isa.Insn.Alu { op = Isa.Insn.Add; cc = false; rd = 1; rs1 = 1; op2 = Isa.Insn.Imm 40000 });
  expect_err (Isa.Insn.Branch { cond = Isa.Insn.Eq; target = 0x400000 });
  expect_err (Isa.Insn.Sethi { rd = 1; imm = 0x200000 })

let test_decode_invalid () =
  match Isa.Encode.decode (Int32.of_int (0x3F lsl 26)) with
  | exception Isa.Encode.Error _ -> ()
  | _ -> Alcotest.fail "expected decode error"

let test_program_image_roundtrip () =
  List.iter
    (fun app ->
      let p = Lazy.force app.Apps.Registry.program in
      let image = Isa.Encode.encode_program p in
      let p' = Isa.Encode.decode_program image in
      check_bool (app.Apps.Registry.name ^ " code identical") true
        (p.Isa.Program.code = p'.Isa.Program.code);
      check_bool "data identical" true (Bytes.equal p.Isa.Program.data p'.Isa.Program.data);
      check_int "entry" p.Isa.Program.entry p'.Isa.Program.entry;
      check_bool "symbols identical" true
        (List.sort compare p.Isa.Program.symbols
        = List.sort compare p'.Isa.Program.symbols))
    Apps.Registry.all

let test_loaded_program_runs_identically () =
  let app = Apps.Registry.arith in
  let p = Lazy.force app.Apps.Registry.program in
  let p' = Isa.Encode.decode_program (Isa.Encode.encode_program p) in
  let run prog =
    let cpu = Sim.Cpu.create Arch.Config.base prog ~mem_size:(1 lsl 20) in
    Sim.Cpu.run cpu;
    (Sim.Cpu.result cpu, (Sim.Cpu.profile cpu).Sim.Profiler.cycles)
  in
  let r1, c1 = run p and r2, c2 = run p' in
  check_int "same result" r1 r2;
  check_int "same cycles" c1 c2

let test_image_truncation () =
  let p = Lazy.force Apps.Registry.arith.Apps.Registry.program in
  let image = Isa.Encode.encode_program p in
  let cut = Bytes.sub image 0 (Bytes.length image - 3) in
  match Isa.Encode.decode_program cut with
  | exception Isa.Encode.Error _ -> ()
  | _ -> Alcotest.fail "expected truncation error"

let () =
  Alcotest.run "isa"
    [
      ( "reg",
        [
          Alcotest.test_case "bank numbering" `Quick test_banks;
          Alcotest.test_case "globals fixed" `Quick test_globals_fixed;
          Alcotest.test_case "window overlap" `Quick test_window_overlap;
          Alcotest.test_case "no alias in window" `Quick test_no_alias_within_window;
          Alcotest.test_case "locals private" `Quick test_locals_private;
          Alcotest.test_case "file size" `Quick test_file_size;
          Alcotest.test_case "names" `Quick test_names;
        ] );
      ( "insn",
        [
          Alcotest.test_case "icc classes" `Quick test_icc_classes;
          Alcotest.test_case "reads/writes" `Quick test_writes_reads;
        ] );
      ( "encode",
        [
          QCheck_alcotest.to_alcotest encode_roundtrip_qtest;
          Alcotest.test_case "width" `Quick test_encode_width;
          Alcotest.test_case "range errors" `Quick test_encode_range_errors;
          Alcotest.test_case "invalid opcode" `Quick test_decode_invalid;
          Alcotest.test_case "program image roundtrip" `Quick test_program_image_roundtrip;
          Alcotest.test_case "loaded program runs" `Quick test_loaded_program_runs_identically;
          Alcotest.test_case "truncated image" `Quick test_image_truncation;
        ] );
      ( "asm",
        [
          Alcotest.test_case "labels resolve" `Quick test_labels_resolve;
          Alcotest.test_case "undefined label" `Quick test_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "data layout" `Quick test_data_layout;
          Alcotest.test_case "set32 small" `Quick test_set32_small;
          Alcotest.test_case "set32 large" `Quick test_set32_large;
          Alcotest.test_case "symbol not found" `Quick test_symbol_not_found;
        ] );
    ]
