(* Integration tests for the DSE core: cost model, measurement,
   formulation, optimizer, exhaustive baseline, and the paper's
   near-optimality claims. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- Cost --- *)

let mk_cost seconds luts brams =
  { Dse.Cost.seconds; resources = { Synth.Resource.luts; brams } }

let test_cost_deltas () =
  let base = mk_cost 10.0 19200 80 in
  let c = mk_cost 11.0 19584 96 in
  let d = Dse.Cost.deltas ~base c in
  check_float "rho" 10.0 d.Dse.Cost.rho;
  check_float "lambda" 1.0 d.Dse.Cost.lambda;
  check_float "beta" 10.0 d.Dse.Cost.beta

let test_cost_objective () =
  let d = { Dse.Cost.rho = -2.0; lambda = 1.0; beta = 3.0 } in
  check_float "runtime weights" ((100.0 *. -2.0) +. 4.0)
    (Dse.Cost.objective Dse.Cost.runtime_weights d);
  check_float "resource weights" (-2.0 +. 400.0)
    (Dse.Cost.objective Dse.Cost.resource_weights d);
  check_float "runtime only" (-200.0)
    (Dse.Cost.objective Dse.Cost.runtime_only d)

let test_cost_headroom () =
  let base = mk_cost 10.0 14992 82 in
  check_bool "luts headroom ~60.96" true
    (Float.abs (Dse.Cost.headroom_luts base -. 60.958) < 0.01);
  check_bool "bram headroom 48.75" true
    (Float.abs (Dse.Cost.headroom_brams base -. 48.75) < 0.01)

(* --- Measure (dcache dims: cheap) --- *)

let dcache_model = lazy (Dse.Measure.build ~dims:Arch.Param.dcache_size_dims Apps.Registry.blastn)

let test_measure_dims () =
  let m = Lazy.force dcache_model in
  check_int "8 rows for dcache ways+size" 8 (List.length m.Dse.Measure.rows);
  List.iter
    (fun (r : Dse.Measure.row) ->
      check_bool "group restricted" true
        (List.mem r.Dse.Measure.var.Arch.Param.group Arch.Param.dcache_size_dims))
    m.Dse.Measure.rows

let test_measure_base () =
  let m = Lazy.force dcache_model in
  check_int "base LUTs" 14992 m.Dse.Measure.base.Dse.Cost.resources.Synth.Resource.luts;
  check_int "base BRAM" 82 m.Dse.Measure.base.Dse.Cost.resources.Synth.Resource.brams

let test_measure_signs () =
  (* Bigger dcache: negative rho (faster), positive beta (more BRAM). *)
  let m = Lazy.force dcache_model in
  let r32 = Dse.Measure.row m 19 in
  check_bool "32KB speeds BLASTN up" true (r32.Dse.Measure.deltas.Dse.Cost.rho < 0.0);
  check_bool "32KB costs BRAM" true (r32.Dse.Measure.deltas.Dse.Cost.beta > 30.0);
  let r1 = Dse.Measure.row m 15 in
  check_bool "1KB slows BLASTN" true (r1.Dse.Measure.deltas.Dse.Cost.rho > 0.0);
  check_bool "1KB saves BRAM" true (r1.Dse.Measure.deltas.Dse.Cost.beta < 0.0)

let test_measure_row_lookup () =
  let m = Lazy.force dcache_model in
  match Dse.Measure.row m 23 with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "row 23 (fast jump) is outside dcache dims"

let test_measure_noise_deterministic () =
  let a = Dse.Measure.measure ~noise:0.005 Apps.Registry.arith Arch.Config.base in
  let b = Dse.Measure.measure ~noise:0.005 Apps.Registry.arith Arch.Config.base in
  check_int "noise is a function of the configuration"
    a.Dse.Cost.resources.Synth.Resource.luts
    b.Dse.Cost.resources.Synth.Resource.luts

(* --- Formulate --- *)

let test_formulate_structure () =
  let m = Lazy.force dcache_model in
  let p = Dse.Formulate.make Dse.Cost.runtime_only m in
  check_int "8 variables" 8 p.Optim.Binlp.nvars;
  check_int "2 SOS1 groups (ways, sizes)" 2 (List.length p.Optim.Binlp.groups);
  (* no replacement vars in dims: couplings vanish; 2 resource rows *)
  check_int "2 constraints" 2 (List.length p.Optim.Binlp.constraints)

let full_model = lazy (Dse.Measure.build Apps.Registry.blastn)

let test_formulate_full () =
  let m = Lazy.force full_model in
  let p = Dse.Formulate.make Dse.Cost.runtime_weights m in
  check_int "52 variables" 52 p.Optim.Binlp.nvars;
  (* 8 multi-member SOS1 groups, as in the paper's Section 4 *)
  check_int "8 SOS1 groups" 8 (List.length p.Optim.Binlp.groups);
  (* 4 couplings + LUT + BRAM *)
  check_int "6 constraints" 6 (List.length p.Optim.Binlp.constraints)

let test_formulate_prediction_additivity () =
  (* For variables not involved in cache products, predicted deltas are
     plain sums of the measured rows. *)
  let m = Lazy.force full_model in
  let v23 = Arch.Param.var 23 and v24 = Arch.Param.var 24 in
  let d = Dse.Formulate.predicted_deltas m [ v23; v24 ] in
  let r23 = Dse.Measure.row m 23 and r24 = Dse.Measure.row m 24 in
  check_bool "rho adds" true
    (Float.abs
       (d.Dse.Cost.rho
       -. (r23.Dse.Measure.deltas.Dse.Cost.rho
          +. r24.Dse.Measure.deltas.Dse.Cost.rho))
    < 1e-9)

let test_formulate_product_prediction () =
  (* ways=2 and size=32 together: BRAM prediction uses the product form
     (1 + x12)*(beta_32KB), plus the linear ways term — matching the
     true additive per-way resource cost exactly. *)
  let m = Lazy.force full_model in
  let v12 = Arch.Param.var 12 and v19 = Arch.Param.var 19 in
  let d = Dse.Formulate.predicted_deltas m [ v12; v19 ] in
  let config = Arch.Param.apply_all Arch.Config.base [ v12; v19 ] in
  let actual = Synth.Estimate.config config in
  let actual_beta =
    Synth.Resource.bram_percent actual
    -. Synth.Resource.bram_percent m.Dse.Measure.base.Dse.Cost.resources
  in
  check_bool "nonlinear BRAM prediction within 1 point of truth" true
    (Float.abs (d.Dse.Cost.beta -. actual_beta) < 1.0)

let test_formulate_linear_variant_differs () =
  let m = Lazy.force full_model in
  let v12 = Arch.Param.var 12 and v19 = Arch.Param.var 19 in
  let nl = Dse.Formulate.predicted_deltas m [ v12; v19 ] in
  let lin =
    Dse.Formulate.predicted_deltas
      ~variant:{ Dse.Formulate.lut_nonlinear = false; bram_linear = true }
      m [ v12; v19 ]
  in
  (* The linear model misses the ways x size interaction and
     underestimates BRAM, as the paper's BRAM%-lin rows show. *)
  check_bool "linear underestimates" true (lin.Dse.Cost.beta < nl.Dse.Cost.beta)

(* --- Optimizer on the Section 5 study --- *)

let test_optimizer_dcache_blastn () =
  let m = Lazy.force dcache_model in
  let o = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_only m in
  (* The paper's pick: 1 way of 32 KB. *)
  check_int "ways" 1 o.Dse.Optimizer.config.Arch.Config.dcache.Arch.Config.ways;
  check_int "way KB" 32 o.Dse.Optimizer.config.Arch.Config.dcache.Arch.Config.way_kb

let test_optimizer_near_optimal () =
  (* Section 5's claim: the optimizer's pick is near the exhaustive
     optimum (the paper found a 0.02% runtime difference). *)
  let m = Lazy.force dcache_model in
  let o = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_only m in
  let sweep = Dse.Exhaustive.dcache_sweep Apps.Registry.blastn in
  let best = Dse.Exhaustive.best_runtime sweep in
  match best.Dse.Exhaustive.cost with
  | None -> Alcotest.fail "exhaustive best must be feasible"
  | Some c ->
      let gap =
        (o.Dse.Optimizer.actual.Dse.Cost.seconds -. c.Dse.Cost.seconds)
        /. c.Dse.Cost.seconds
      in
      check_bool "within 0.5% of exhaustive optimum" true
        (gap >= 0.0 && gap < 0.005)

let test_optimizer_solution_feasible () =
  let m = Lazy.force dcache_model in
  let o = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights m in
  check_bool "configuration valid" true (Arch.Config.is_valid o.Dse.Optimizer.config);
  check_bool "fits the device" true
    (Synth.Resource.fits o.Dse.Optimizer.actual.Dse.Cost.resources)

let test_optimizer_weights_tradeoff () =
  (* Resource weights must never pick a configuration with more chip
     cost than the runtime-weights pick, and vice versa for runtime. *)
  let m = Lazy.force dcache_model in
  let rt = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights m in
  let rc = Dse.Optimizer.run_with_model ~weights:Dse.Cost.resource_weights m in
  check_bool "resource pick uses fewer resources" true
    (Synth.Resource.chip_cost rc.Dse.Optimizer.actual.Dse.Cost.resources
    <= Synth.Resource.chip_cost rt.Dse.Optimizer.actual.Dse.Cost.resources);
  check_bool "runtime pick is at least as fast" true
    (rt.Dse.Optimizer.actual.Dse.Cost.seconds
    <= rc.Dse.Optimizer.actual.Dse.Cost.seconds)

let test_optimizer_arith_ignores_dcache () =
  let o =
    Dse.Optimizer.run ~dims:Arch.Param.dcache_size_dims
      ~weights:Dse.Cost.runtime_weights Apps.Registry.arith
  in
  (* Nothing to gain: with w2 > 0 the optimizer shrinks the dcache
     instead (resource savings at zero runtime cost). *)
  check_bool "dcache not grown" true
    (o.Dse.Optimizer.config.Arch.Config.dcache.Arch.Config.way_kb <= 4)

(* --- Exhaustive --- *)

let test_exhaustive_counts () =
  let points = Dse.Exhaustive.dcache_sweep Apps.Registry.blastn in
  check_int "28 points" 28 (List.length points);
  let feasible =
    List.length (List.filter (fun p -> p.Dse.Exhaustive.cost <> None) points)
  in
  check_int "19 feasible, as in Figure 2" 19 feasible

let test_exhaustive_optimum_matches_paper_pick () =
  let points = Dse.Exhaustive.dcache_sweep Apps.Registry.blastn in
  let best = Dse.Exhaustive.best_runtime points in
  let d = best.Dse.Exhaustive.config.Arch.Config.dcache in
  (* Paper Figure 2: optimal runtime at 2 x 16 KB. *)
  check_int "ways" 2 d.Arch.Config.ways;
  check_int "way KB" 16 d.Arch.Config.way_kb

(* --- Full end-to-end (the headline result) --- *)

let test_full_runtime_optimization_blastn () =
  let m = Lazy.force full_model in
  let o = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights m in
  let base = m.Dse.Measure.base.Dse.Cost.seconds in
  let gain = 100.0 *. (base -. o.Dse.Optimizer.actual.Dse.Cost.seconds) /. base in
  (* Paper Section 6.1: BLASTN improves 11.59%; ours lands close. *)
  check_bool (Printf.sprintf "gain %.2f%% in 8..16%%" gain) true
    (gain > 8.0 && gain < 16.0);
  (* The application-specific picks of Figure 5. *)
  let c = o.Dse.Optimizer.config in
  check_int "32KB dcache capacity" 32
    (c.Arch.Config.dcache.Arch.Config.ways * c.Arch.Config.dcache.Arch.Config.way_kb);
  check_bool "multiplier upgraded" true
    (c.Arch.Config.iu.Arch.Config.multiplier = Arch.Config.Mul_32x32);
  check_bool "icc hold disabled" true (not c.Arch.Config.iu.Arch.Config.icc_hold);
  check_bool "divider dropped (BLASTN never divides)" true
    (c.Arch.Config.iu.Arch.Config.divider = Arch.Config.Div_none)

let test_prediction_tracks_actual () =
  (* The linear model's runtime prediction should be within a few
     percent of the actual build for BLASTN (paper: 9.35 vs 9.37). *)
  let m = Lazy.force full_model in
  let o = Dse.Optimizer.run_with_model ~weights:Dse.Cost.runtime_weights m in
  let err =
    Float.abs
      (o.Dse.Optimizer.predicted.Dse.Optimizer.seconds
      -. o.Dse.Optimizer.actual.Dse.Cost.seconds)
    /. o.Dse.Optimizer.actual.Dse.Cost.seconds
  in
  check_bool "prediction within 5%" true (err < 0.05)

let () =
  Alcotest.run "dse"
    [
      ( "cost",
        [
          Alcotest.test_case "deltas" `Quick test_cost_deltas;
          Alcotest.test_case "objective" `Quick test_cost_objective;
          Alcotest.test_case "headroom" `Quick test_cost_headroom;
        ] );
      ( "measure",
        [
          Alcotest.test_case "dims restriction" `Quick test_measure_dims;
          Alcotest.test_case "base cost" `Quick test_measure_base;
          Alcotest.test_case "delta signs" `Quick test_measure_signs;
          Alcotest.test_case "row lookup" `Quick test_measure_row_lookup;
          Alcotest.test_case "noise determinism" `Quick test_measure_noise_deterministic;
        ] );
      ( "formulate",
        [
          Alcotest.test_case "dcache structure" `Quick test_formulate_structure;
          Alcotest.test_case "full structure" `Quick test_formulate_full;
          Alcotest.test_case "prediction additivity" `Quick test_formulate_prediction_additivity;
          Alcotest.test_case "product prediction" `Quick test_formulate_product_prediction;
          Alcotest.test_case "linear variant" `Quick test_formulate_linear_variant_differs;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "dcache pick (paper fig 3)" `Quick test_optimizer_dcache_blastn;
          Alcotest.test_case "near-optimality (paper s5)" `Quick test_optimizer_near_optimal;
          Alcotest.test_case "solution feasible" `Quick test_optimizer_solution_feasible;
          Alcotest.test_case "weights tradeoff" `Quick test_optimizer_weights_tradeoff;
          Alcotest.test_case "arith ignores dcache" `Quick test_optimizer_arith_ignores_dcache;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "sweep counts" `Quick test_exhaustive_counts;
          Alcotest.test_case "optimum = paper pick" `Quick test_exhaustive_optimum_matches_paper_pick;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "runtime optimization (fig 5)" `Slow test_full_runtime_optimization_blastn;
          Alcotest.test_case "prediction accuracy" `Slow test_prediction_tracks_actual;
        ] );
    ]
