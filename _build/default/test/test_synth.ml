(* Tests for the FPGA resource model, including exact regression tests
   against every synthesis datum published in the paper. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_device () =
  check_int "LUTs" 38400 Synth.Device.luts;
  check_int "BRAMs" 160 Synth.Device.brams

let test_base_matches_paper () =
  (* Paper, Section 2.4: the default LEON configuration utilizes
     14,992 LUTs (39%) and 82 BRAM (51%). *)
  let r = Synth.Estimate.base in
  check_int "base LUTs" 14992 r.Synth.Resource.luts;
  check_int "base BRAM" 82 r.Synth.Resource.brams;
  check_int "base LUT%" 39 (Synth.Resource.lut_percent_int r);
  check_int "base BRAM%" 51 (Synth.Resource.bram_percent_int r)

let dcache_config ways way_kb =
  { Arch.Config.base with
    dcache = { Arch.Config.base.dcache with ways; way_kb } }

(* Paper Figure 2: BRAM% for every feasible dcache (ways, way-size)
   combination, with everything else at base. *)
let figure2_bram_rows =
  [
    (1, 1, 47); (1, 2, 48); (1, 4, 51); (1, 8, 56); (1, 16, 68); (1, 32, 90);
    (2, 1, 49); (2, 2, 51); (2, 4, 56); (2, 8, 68); (2, 16, 90);
    (3, 1, 51); (3, 2, 55); (3, 4, 62); (3, 8, 79);
    (4, 1, 53); (4, 2, 58); (4, 4, 68); (4, 8, 90);
  ]

let test_figure2_bram_exact () =
  List.iter
    (fun (ways, kb, expected) ->
      let r = Synth.Estimate.config (dcache_config ways kb) in
      check_int
        (Printf.sprintf "BRAM%% for %dx%dKB" ways kb)
        expected
        (Synth.Resource.bram_percent_int r))
    figure2_bram_rows

let test_figure2_lut_band () =
  (* The paper's LUT column stays in the 38-39% band across Figure 2. *)
  List.iter
    (fun (ways, kb, _) ->
      let r = Synth.Estimate.config (dcache_config ways kb) in
      let p = Synth.Resource.lut_percent_int r in
      check_bool (Printf.sprintf "LUT%% band %dx%d" ways kb) true (p = 38 || p = 39))
    figure2_bram_rows

let test_64kb_infeasible () =
  (* Paper, Figure 1: a 64 KB way needs more BRAM than the device has. *)
  let c = dcache_config 1 64 in
  check_bool "valid structurally" true (Arch.Config.is_valid c);
  check_bool "does not fit" false (Synth.Estimate.feasible c);
  check_bool "over 160 blocks" true
    ((Synth.Estimate.config c).Synth.Resource.brams > 160)

let test_figure6_lut_deltas () =
  (* Paper Figure 6 (BLASTN perturbation costs), LUT% column. *)
  let pct c = Synth.Resource.lut_percent_int (Synth.Estimate.config c) in
  let with_iu f = { Arch.Config.base with Arch.Config.iu = f Arch.Config.base.Arch.Config.iu } in
  check_int "nodivider -> 37%" 37
    (pct (with_iu (fun u -> { u with Arch.Config.divider = Arch.Config.Div_none })));
  check_int "m32x32 -> 40%" 40
    (pct (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 })));
  check_int "nofastjump -> 38%" 38
    (pct (with_iu (fun u -> { u with Arch.Config.fast_jump = false })));
  check_int "noicchold -> 39%" 39
    (pct (with_iu (fun u -> { u with Arch.Config.icc_hold = false })))

let test_line4_bram () =
  (* Halving the line size doubles the number of tags: +1 BRAM for a
     4 KB way, keeping the truncated percentage at 51 (Figure 6). *)
  let c =
    { Arch.Config.base with
      dcache = { Arch.Config.base.dcache with line_words = 4 } }
  in
  let r = Synth.Estimate.config c in
  check_int "one extra tag block" 83 r.Synth.Resource.brams;
  check_int "still 51%" 51 (Synth.Resource.bram_percent_int r)

let test_way_bram_formula () =
  check_int "4KB/8w way" 9 (Synth.Estimate.cache_way_brams ~way_kb:4 ~line_words:8);
  check_int "1KB/8w way" 3 (Synth.Estimate.cache_way_brams ~way_kb:1 ~line_words:8);
  check_int "32KB/8w way" 72 (Synth.Estimate.cache_way_brams ~way_kb:32 ~line_words:8);
  check_int "64KB/8w way" 144 (Synth.Estimate.cache_way_brams ~way_kb:64 ~line_words:8);
  check_int "4KB/4w way" 10 (Synth.Estimate.cache_way_brams ~way_kb:4 ~line_words:4)

let test_monotonicity () =
  (* More ways / bigger ways never cost less. *)
  let brams ways kb =
    (Synth.Estimate.config (dcache_config ways kb)).Synth.Resource.brams
  in
  List.iter
    (fun kb ->
      check_bool "ways monotone" true (brams 2 kb >= brams 1 kb);
      check_bool "ways monotone" true (brams 4 kb >= brams 3 kb))
    [ 1; 2; 4; 8 ];
  List.iter
    (fun ways ->
      check_bool "size monotone" true (brams ways 8 >= brams ways 4);
      check_bool "size monotone" true (brams ways 4 >= brams ways 1))
    [ 1; 2; 3; 4 ]

let test_multiplier_ordering () =
  let luts m =
    let c =
      { Arch.Config.base with
        Arch.Config.iu = { Arch.Config.base.Arch.Config.iu with multiplier = m } }
    in
    (Synth.Estimate.config c).Synth.Resource.luts
  in
  let open Arch.Config in
  let seq = [ Mul_none; Mul_iterative; Mul_16x16; Mul_16x16_pipe; Mul_32x8; Mul_32x16; Mul_32x32 ] in
  let costs = List.map luts seq in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | [ _ ] | [] -> true
  in
  check_bool "multiplier area strictly increasing" true (increasing costs)

let test_windows_cost_luts () =
  let luts w =
    let c =
      { Arch.Config.base with
        Arch.Config.iu = { Arch.Config.base.Arch.Config.iu with reg_windows = w } }
    in
    (Synth.Estimate.config c).Synth.Resource.luts
  in
  check_bool "more windows cost more LUTs" true (luts 32 > luts 16 && luts 16 > luts 8);
  check_int "no BRAM for windows"
    (Synth.Estimate.config Arch.Config.base).Synth.Resource.brams
    (Synth.Estimate.config
       { Arch.Config.base with
         Arch.Config.iu = { Arch.Config.base.Arch.Config.iu with reg_windows = 32 } })
      .Synth.Resource.brams

let test_invalid_config_rejected () =
  let c =
    { Arch.Config.base with
      dcache = { Arch.Config.base.dcache with replacement = Arch.Config.Lru } }
  in
  match Synth.Estimate.config c with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_all_perturbations_costed () =
  (* Every one-at-a-time perturbation that is structurally valid gets a
     finite, positive resource estimate; only 32 KB caches approach the
     BRAM limit. *)
  List.iter
    (fun (v, c) ->
      if Arch.Config.is_valid c then begin
        let r = Synth.Estimate.config c in
        check_bool (v.Arch.Param.label ^ " fits") true (Synth.Resource.fits r);
        check_bool (v.Arch.Param.label ^ " positive") true (r.Synth.Resource.luts > 0)
      end)
    (Arch.Space.perturbations ())

let test_resource_arithmetic () =
  let a = { Synth.Resource.luts = 100; brams = 2 } in
  let b = { Synth.Resource.luts = 50; brams = 3 } in
  let s = Synth.Resource.add a b in
  check_int "luts add" 150 s.Synth.Resource.luts;
  check_int "brams add" 5 s.Synth.Resource.brams;
  let total = Synth.Resource.sum [ a; b; Synth.Resource.zero ] in
  check_bool "sum = add" true (total = s);
  check_bool "chip cost positive" true (Synth.Resource.chip_cost s > 0.0)

(* --- Netlist: structural elaboration cross-check --- *)

let test_netlist_equals_estimate_base () =
  let n = Synth.Netlist.resources (Synth.Netlist.elaborate Arch.Config.base) in
  check_bool "identical to closed form" true (n = Synth.Estimate.base)

let test_netlist_equals_estimate_perturbations () =
  List.iter
    (fun (v, c) ->
      if Arch.Config.is_valid c then
        check_bool v.Arch.Param.label true
          (Synth.Netlist.resources (Synth.Netlist.elaborate c)
          = Synth.Estimate.config c))
    (Arch.Space.perturbations ())

let netlist_cross_check_qtest =
  (* Random valid configurations: the two resource-model
     implementations must always agree. *)
  QCheck.Test.make ~count:300 ~name:"netlist total = closed-form estimate"
    QCheck.(make Gen.int)
    (fun seed ->
      let rng = Sim.Rng.create ~seed in
      let c = Dse.Heuristic.random_config rng in
      Synth.Netlist.resources (Synth.Netlist.elaborate c)
      = Synth.Estimate.config c)

let test_netlist_structure () =
  let n = Synth.Netlist.elaborate Arch.Config.base in
  check_bool "has an integer unit" true (Synth.Netlist.find n "integer_unit" <> None);
  check_bool "has a dcache" true (Synth.Netlist.find n "dcache" <> None);
  check_bool "has a register file" true (Synth.Netlist.find n "register_file" <> None);
  check_bool "no ghost component" true (Synth.Netlist.find n "fpu" = None);
  (* one way in the base dcache, four after reconfiguration *)
  let four =
    { Arch.Config.base with
      dcache = { Arch.Config.base.Arch.Config.dcache with ways = 4 } }
  in
  match Synth.Netlist.find (Synth.Netlist.elaborate four) "dcache" with
  | Some (Synth.Netlist.Group { children; _ }) ->
      let ways =
        List.length
          (List.filter
             (function
               | Synth.Netlist.Group { name; _ } ->
                   String.length name >= 3 && String.sub name 0 3 = "way"
               | Synth.Netlist.Leaf _ -> false)
             children)
      in
      check_int "four way groups" 4 ways
  | _ -> Alcotest.fail "dcache group missing"

let test_netlist_report_prints () =
  let s =
    Fmt.str "%a" Synth.Netlist.pp (Synth.Netlist.elaborate Arch.Config.base)
  in
  check_bool "mentions leon2" true
    (String.length s > 100
    && (try ignore (Str.search_forward (Str.regexp_string "leon2") s 0); true
        with Not_found -> false))
  [@@warning "-3"]

let () =
  Alcotest.run "synth"
    [
      ( "calibration",
        [
          Alcotest.test_case "device" `Quick test_device;
          Alcotest.test_case "base = paper default" `Quick test_base_matches_paper;
          Alcotest.test_case "figure 2 BRAM exact" `Quick test_figure2_bram_exact;
          Alcotest.test_case "figure 2 LUT band" `Quick test_figure2_lut_band;
          Alcotest.test_case "figure 6 LUT deltas" `Quick test_figure6_lut_deltas;
          Alcotest.test_case "64KB infeasible" `Quick test_64kb_infeasible;
          Alcotest.test_case "line-4 tag cost" `Quick test_line4_bram;
          Alcotest.test_case "way BRAM formula" `Quick test_way_bram_formula;
        ] );
      ( "model",
        [
          Alcotest.test_case "monotonicity" `Quick test_monotonicity;
          Alcotest.test_case "multiplier ordering" `Quick test_multiplier_ordering;
          Alcotest.test_case "window cost" `Quick test_windows_cost_luts;
          Alcotest.test_case "invalid rejected" `Quick test_invalid_config_rejected;
          Alcotest.test_case "all perturbations" `Quick test_all_perturbations_costed;
          Alcotest.test_case "resource arithmetic" `Quick test_resource_arithmetic;
        ] );
      ( "netlist",
        [
          Alcotest.test_case "base agreement" `Quick test_netlist_equals_estimate_base;
          Alcotest.test_case "perturbation agreement" `Quick test_netlist_equals_estimate_perturbations;
          QCheck_alcotest.to_alcotest netlist_cross_check_qtest;
          Alcotest.test_case "structure" `Quick test_netlist_structure;
          Alcotest.test_case "report prints" `Quick test_netlist_report_prints;
        ] );
    ]
