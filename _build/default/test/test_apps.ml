(* Tests for the four benchmark applications: correctness (interpreter
   vs compiled/simulated), determinism, and the cost signatures the
   paper's experiments rely on. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let base = Arch.Config.base

let with_dcache f = { base with Arch.Config.dcache = f base.Arch.Config.dcache }
let with_iu f = { base with Arch.Config.iu = f base.Arch.Config.iu }

let seconds app config = Apps.Registry.seconds ~config app

(* Expected checksums, computed once with the reference interpreter and
   pinned here as regressions: a change to workloads, the language
   semantics, or the compiler that alters any benchmark's answer must
   be noticed. *)
let expected_checksums =
  [ ("blastn", 0x26a2cd8); ("drr", 0xbc1abe55); ("frag", 0x445e81a5); ("arith", 0x6dee1fac) ]

let test_checksums_pinned () =
  List.iter
    (fun (name, expected) ->
      let app = Apps.Registry.find name in
      check_int (name ^ " simulator checksum") expected
        (Apps.Registry.run app).Sim.Machine.checksum)
    expected_checksums

let test_interp_agrees () =
  (* The interpreter run also certifies every array access in-bounds. *)
  List.iter
    (fun app ->
      check_int
        (app.Apps.Registry.name ^ " interp = sim")
        (Apps.Registry.interp_checksum app)
        (Apps.Registry.run app).Sim.Machine.checksum)
    Apps.Registry.all

let test_valid_programs () =
  List.iter
    (fun app ->
      match Minic.Check.check app.Apps.Registry.source with
      | Ok () -> ()
      | Error es ->
          Alcotest.failf "%s: %s" app.Apps.Registry.name (String.concat "; " es))
    Apps.Registry.all

let test_base_runtime_scale () =
  (* Scaled runtimes sit within 2% of the paper's reported defaults. *)
  List.iter
    (fun app ->
      let s = Apps.Registry.seconds app in
      let p = app.Apps.Registry.paper_base_seconds in
      check_bool
        (Printf.sprintf "%s: %.2fs within 2%% of paper %.2fs"
           app.Apps.Registry.name s p)
        true
        (Float.abs (s -. p) /. p < 0.02))
    Apps.Registry.all

let test_determinism () =
  List.iter
    (fun app ->
      let a = (Apps.Registry.run app).Sim.Machine.profile.Sim.Profiler.cycles in
      let b = (Apps.Registry.run app).Sim.Machine.profile.Sim.Profiler.cycles in
      check_int (app.Apps.Registry.name ^ " deterministic") a b)
    Apps.Registry.all

(* --- Cost signatures --- *)

let test_blastn_dcache_monotone () =
  let app = Apps.Registry.blastn in
  let t kb = seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = kb })) in
  let t1 = t 1 and t4 = t 4 and t8 = t 8 and t16 = t 16 and t32 = t 32 in
  check_bool "1KB slower than base" true (t1 > t4);
  check_bool "8KB faster than base" true (t8 < t4);
  check_bool "16KB faster than 8KB" true (t16 < t8);
  check_bool "32KB faster than 16KB" true (t32 < t16);
  (* the paper's gain at 32 KB is a few percent, not an order *)
  let gain = (t4 -. t32) /. t4 in
  check_bool "32KB gain in 1..6% band" true (gain > 0.01 && gain < 0.06)

let test_blastn_capacity_plateau () =
  (* 1x32 KB and 2x16 KB have the same capacity and the same runtime
     plateau (paper Figure 2: both 10.22 s). *)
  let app = Apps.Registry.blastn in
  let a = seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = 32 })) in
  let b =
    seconds app (with_dcache (fun d -> { d with Arch.Config.ways = 2; way_kb = 16 }))
  in
  check_bool "plateau" true (Float.abs (a -. b) /. a < 0.003)

let test_drr_dcache_strongest () =
  (* DRR has the largest relative dcache gain of the four (the paper's
     19.4% total gain is dominated by the cache). *)
  let gain app =
    let t32 =
      seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = 32 }))
    in
    let t4 = Apps.Registry.seconds app in
    (t4 -. t32) /. t4
  in
  let drr = gain Apps.Registry.drr in
  check_bool "drr gain > blastn gain" true (drr > gain Apps.Registry.blastn);
  check_bool "drr gain > frag gain" true (drr > gain Apps.Registry.frag);
  check_bool "drr gain 5..15%" true (drr > 0.05 && drr < 0.15)

let test_arith_dcache_insensitive () =
  (* Paper Figure 4: "No effect, as application is not data intensive". *)
  let app = Apps.Registry.arith in
  let t4 = Apps.Registry.seconds app in
  List.iter
    (fun kb ->
      let t = seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = kb })) in
      check_bool (Printf.sprintf "%dKB identical" kb) true (t = t4))
    [ 1; 2; 8; 16; 32 ]

let test_multiplier_helps_all () =
  List.iter
    (fun app ->
      let fast =
        seconds app
          (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 }))
      in
      let b = Apps.Registry.seconds app in
      check_bool (app.Apps.Registry.name ^ " m32x32 faster") true (fast < b);
      check_bool
        (app.Apps.Registry.name ^ " gain under 10%")
        true
        ((b -. fast) /. b < 0.10))
    Apps.Registry.all

let test_divider_only_matters_for_arith () =
  List.iter
    (fun app ->
      let soft =
        seconds app
          (with_iu (fun u -> { u with Arch.Config.divider = Arch.Config.Div_none }))
      in
      let b = Apps.Registry.seconds app in
      if app.Apps.Registry.name = "arith" then
        check_bool "software division is catastrophic for arith" true
          (soft > b *. 1.5)
      else
        check_bool (app.Apps.Registry.name ^ " indifferent to divider") true
          (Float.abs (soft -. b) /. b < 0.001))
    Apps.Registry.all

let test_icc_hold_costs_time () =
  (* Disabling the ICC hold logic speeds every benchmark up a little,
     the effect the paper measured on BLASTN (Figure 6: 10.60->10.24). *)
  List.iter
    (fun app ->
      let off = seconds app (with_iu (fun u -> { u with Arch.Config.icc_hold = false })) in
      let b = Apps.Registry.seconds app in
      check_bool (app.Apps.Registry.name ^ " faster without hold") true (off < b);
      check_bool (app.Apps.Registry.name ^ " gain under 8%") true ((b -. off) /. b < 0.08))
    Apps.Registry.all

let test_icache_insensitive () =
  (* All four applications fit their code in 2 KB of icache; the paper's
     optimizer shrinks the icache without runtime loss. *)
  List.iter
    (fun app ->
      let small =
        seconds app
          { base with Arch.Config.icache = { base.Arch.Config.icache with way_kb = 2 } }
      in
      let b = Apps.Registry.seconds app in
      check_bool (app.Apps.Registry.name ^ " 2KB icache free") true
        (Float.abs (small -. b) /. b < 0.001))
    Apps.Registry.all

let test_code_sizes () =
  (* Small kernels, as in the paper (77-163 source lines each); they
     must fit comfortably in a 2 KB icache but be nontrivial. *)
  List.iter
    (fun app ->
      let n = Array.length (Lazy.force app.Apps.Registry.program).Isa.Program.code in
      check_bool
        (Printf.sprintf "%s: %d insns in [40, 512]" app.Apps.Registry.name n)
        true
        (n >= 40 && n <= 512))
    Apps.Registry.all

let test_registry_lookup () =
  check_bool "find is case-insensitive" true
    (Apps.Registry.find "BLASTN" == Apps.Registry.blastn);
  check_int "four benchmarks" 4 (List.length Apps.Registry.all);
  match Apps.Registry.find "nonesuch" with
  | exception Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found"

let test_workload_determinism () =
  let a = Apps.Workload.dna ~seed:42 ~len:100 in
  let b = Apps.Workload.dna ~seed:42 ~len:100 in
  let c = Apps.Workload.dna ~seed:43 ~len:100 in
  check_bool "same seed, same data" true (a = b);
  check_bool "different seed, different data" true (a <> c);
  Array.iter (fun x -> check_bool "bases in 0..3" true (x >= 0 && x <= 3)) a

let test_lcg_matches_benchmarks () =
  (* The in-benchmark LCG recurrence equals Workload.lcg_next. *)
  let x = 0x5EED in
  let y = Apps.Workload.lcg_next x in
  check_int "lcg step" (((x * 1103515245) + 12345) land 0x7FFFFFFF) y;
  let s = Apps.Workload.lcg_stream ~seed:x ~len:3 in
  check_int "stream head" y s.(0);
  check_int "stream next" (Apps.Workload.lcg_next y) s.(1)

(* --- Extra kernels (parsed from concrete syntax) --- *)

let test_extra_interp_agrees () =
  List.iter
    (fun app ->
      check_int
        (app.Apps.Registry.name ^ " interp = sim")
        (Apps.Registry.interp_checksum app)
        (Apps.Registry.run app).Sim.Machine.checksum)
    Apps.Extra.all

let test_extra_rtr_cache_hungry () =
  (* The trie walk touches 32 KB of level-2 blocks at random: growing
     the dcache helps substantially. *)
  let app = Apps.Extra.rtr in
  let t4 = Apps.Registry.seconds app in
  let t32 = seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = 32 })) in
  check_bool "32KB much faster" true ((t4 -. t32) /. t4 > 0.05)

let test_extra_dct_mult_bound () =
  (* 8192 multiplies per block: the multiplier dominates, the dcache is
     nearly irrelevant. *)
  let app = Apps.Extra.dct in
  let t = Apps.Registry.seconds app in
  let tm =
    seconds app
      (with_iu (fun u -> { u with Arch.Config.multiplier = Arch.Config.Mul_32x32 }))
  in
  let tc = seconds app (with_dcache (fun d -> { d with Arch.Config.way_kb = 32 })) in
  check_bool "multiplier gain over 10%" true ((t -. tm) /. t > 0.10);
  check_bool "dcache gain under 2%" true (Float.abs (t -. tc) /. t < 0.02)

let test_extra_qsort_windows () =
  (* qsort recurses tens of frames deep: more register windows remove
     overflow traps and cycles — the only kernel where the windows
     parameter matters (the paper's four do not recurse). *)
  let app = Apps.Extra.qsort in
  let win w = with_iu (fun u -> { u with Arch.Config.reg_windows = w }) in
  let r8 = Apps.Registry.run ~config:(win 8) app in
  let r32 = Apps.Registry.run ~config:(win 32) app in
  check_bool "traps at 8 windows" true
    (r8.Sim.Machine.profile.Sim.Profiler.window_overflows > 0);
  check_int "no traps at 32 windows" 0
    r32.Sim.Machine.profile.Sim.Profiler.window_overflows;
  check_bool "32 windows faster" true
    (r32.Sim.Machine.profile.Sim.Profiler.cycles
    < r8.Sim.Machine.profile.Sim.Profiler.cycles);
  check_int "same checksum" r8.Sim.Machine.checksum r32.Sim.Machine.checksum;
  check_bool "sorted checksum nonzero" true (r8.Sim.Machine.checksum > 0)

let test_extra_optimizer_runs () =
  (* The full pipeline accepts extra apps out of the box. *)
  let o =
    Dse.Optimizer.run ~dims:Arch.Param.dcache_size_dims
      ~weights:Dse.Cost.runtime_weights Apps.Extra.rtr
  in
  check_bool "valid recommendation" true
    (Arch.Config.is_valid o.Dse.Optimizer.config)

let () =
  Alcotest.run "apps"
    [
      ( "correctness",
        [
          Alcotest.test_case "pinned checksums" `Quick test_checksums_pinned;
          Alcotest.test_case "interp agrees" `Quick test_interp_agrees;
          Alcotest.test_case "valid programs" `Quick test_valid_programs;
          Alcotest.test_case "runtime scale" `Quick test_base_runtime_scale;
          Alcotest.test_case "determinism" `Quick test_determinism;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "blastn dcache monotone" `Quick test_blastn_dcache_monotone;
          Alcotest.test_case "blastn capacity plateau" `Quick test_blastn_capacity_plateau;
          Alcotest.test_case "drr strongest dcache" `Quick test_drr_dcache_strongest;
          Alcotest.test_case "arith dcache-insensitive" `Quick test_arith_dcache_insensitive;
          Alcotest.test_case "multiplier helps all" `Quick test_multiplier_helps_all;
          Alcotest.test_case "divider only for arith" `Quick test_divider_only_matters_for_arith;
          Alcotest.test_case "icc hold costs time" `Quick test_icc_hold_costs_time;
          Alcotest.test_case "icache insensitive" `Quick test_icache_insensitive;
          Alcotest.test_case "code sizes" `Quick test_code_sizes;
        ] );
      ( "extra",
        [
          Alcotest.test_case "interp agrees" `Quick test_extra_interp_agrees;
          Alcotest.test_case "rtr cache-hungry" `Quick test_extra_rtr_cache_hungry;
          Alcotest.test_case "dct mult-bound" `Quick test_extra_dct_mult_bound;
          Alcotest.test_case "qsort window traps" `Quick test_extra_qsort_windows;
          Alcotest.test_case "optimizer accepts extras" `Quick test_extra_optimizer_runs;
        ] );
      ( "workload",
        [
          Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
          Alcotest.test_case "workload determinism" `Quick test_workload_determinism;
          Alcotest.test_case "lcg recurrence" `Quick test_lcg_matches_benchmarks;
        ] );
    ]
