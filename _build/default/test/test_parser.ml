(* Tests for minic's concrete syntax: lexer, parser, pretty-printer
   roundtrip, and source-level end-to-end compilation. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse_ok src =
  match Minic.Parser.parse src with
  | Ok p -> p
  | Error msg -> Alcotest.failf "parse error: %s" msg

let expect_parse_error src =
  match Minic.Parser.parse src with
  | Ok _ -> Alcotest.failf "expected a parse error for %S" src
  | Error _ -> ()

(* --- Lexer --- *)

let test_lexer_tokens () =
  let lx = Minic.Lexer.create "foo 42 0x2A <= << // c\n != /* b */ %" in
  let rec drain acc =
    match Minic.Lexer.next lx with
    | Minic.Lexer.EOF, _ -> List.rev acc
    | t, _ -> drain (t :: acc)
  in
  Alcotest.(check (list string))
    "token stream"
    [ "foo"; "42"; "42"; "<="; "<<"; "!="; "%" ]
    (List.map Minic.Lexer.token_to_string (drain []))

let test_lexer_line_numbers () =
  let lx = Minic.Lexer.create "a\nb\n\nc" in
  let lines = ref [] in
  let rec drain () =
    match Minic.Lexer.next lx with
    | Minic.Lexer.EOF, _ -> ()
    | _, l ->
        lines := l :: !lines;
        drain ()
  in
  drain ();
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4 ] (List.rev !lines)

let test_lexer_errors () =
  let lx = Minic.Lexer.create "@" in
  (match Minic.Lexer.next lx with
  | exception Minic.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lexer error");
  let lx = Minic.Lexer.create "/* unterminated" in
  match Minic.Lexer.next lx with
  | exception Minic.Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected unterminated-comment error"

(* --- Parser basics --- *)

let test_parse_minimal () =
  let p = parse_ok "int main() { return 42; }" in
  check_int "one function" 1 (List.length p.Minic.Ast.funcs);
  check_int "result" 42 (Minic.Interp.run p)

let test_parse_globals () =
  let p =
    parse_ok
      "int s = -7;\n\
       int a[4];\n\
       char b[3] = {1, 2, 255};\n\
       int w[2] = {0x10, -1};\n\
       int main() { return s + b[2] + w[0]; }"
  in
  check_int "four globals" 4 (List.length p.Minic.Ast.globals);
  check_int "result" ((-7 + 255 + 16) land 0xFFFFFFFF) (Minic.Interp.run p)

let test_parse_precedence () =
  (* 1 + 2 * 3 == 7, shifts tighter than comparison. *)
  let p = parse_ok "int main() { return 1 + 2 * 3; }" in
  check_int "mul binds tighter" 7 (Minic.Interp.run p);
  let p = parse_ok "int main() { return 1 << 2 < 5; }" in
  check_int "shift then compare" 1 (Minic.Interp.run p);
  let p = parse_ok "int main() { return 6 & 3 == 3; }" in
  (* == before &: 6 & (3 == 3) = 6 & 1 = 0 ... C-style. *)
  check_int "equality before and" 0 (Minic.Interp.run p)

let test_parse_control_flow () =
  let src =
    "int gcd(int a, int b) {\n\
    \  int t;\n\
    \  while (b != 0) { t = b; b = a % b; a = t; }\n\
    \  return a;\n\
     }\n\
     int main() { return gcd(252, 105); }"
  in
  check_int "gcd from source" 21 (Minic.Interp.run (parse_ok src))

let test_parse_if_else () =
  let src =
    "int main() {\n\
    \  int x;\n\
    \  x = -3;\n\
    \  if (x < 0) { x = 0 - x; } else { x = x; }\n\
    \  if (x == 3) { return 1; }\n\
    \  return 0;\n\
     }"
  in
  check_int "if/else" 1 (Minic.Interp.run (parse_ok src))

let test_parse_unary () =
  check_int "folded negative" ((-5) land 0xFFFFFFFF)
    (Minic.Interp.run (parse_ok "int main() { return -5; }"));
  check_int "bitnot" (0xFFFFFFFF land lnot 5)
    (Minic.Interp.run (parse_ok "int main() { return ~5; }"));
  check_int "not" 1 (Minic.Interp.run (parse_ok "int main() { return !0; }"))

let test_parse_errors () =
  expect_parse_error "int main() { return 1 }";      (* missing ; *)
  expect_parse_error "int main() { x = ; }";
  expect_parse_error "int main( { return 1; }";
  expect_parse_error "int a[2] = {1};int main(){return 0;}"; (* length mismatch *)
  expect_parse_error "char c; int main(){return 0;}"; (* char scalar *)
  expect_parse_error "int main() { if x { return 1; } }";
  expect_parse_error "int 3x; int main(){return 0;}"

(* --- Roundtrip: print then parse --- *)

let roundtrip p =
  let src = Minic.Pretty.to_string p in
  match Minic.Parser.parse src with
  | Error msg -> Alcotest.failf "roundtrip parse failed: %s\n%s" msg src
  | Ok p' -> Alcotest.(check bool) "roundtrip equal" true (p = p')

let test_roundtrip_benchmarks () =
  List.iter
    (fun app -> roundtrip app.Apps.Registry.source)
    Apps.Registry.all

(* Random syntactic programs (no semantic constraints — the parser and
   printer don't care whether names resolve). *)
let gen_program =
  let open QCheck.Gen in
  let name = oneofl [ "a"; "bb"; "c0"; "dd_e"; "f" ] in
  let value = int_range (-100000) 100000 in
  let rec expr n =
    if n = 0 then
      oneof [ map (fun v -> Minic.Ast.Int v) value; map (fun s -> Minic.Ast.Var s) name ]
    else
      frequency
        [
          (2, map (fun v -> Minic.Ast.Int v) value);
          (2, map (fun s -> Minic.Ast.Var s) name);
          ( 2,
            name >>= fun a ->
            expr (n - 1) >>= fun ix -> return (Minic.Ast.Idx (a, ix)) );
          ( 4,
            oneofl
              [ Minic.Ast.Add; Minic.Ast.Sub; Minic.Ast.Mul; Minic.Ast.Div;
                Minic.Ast.Mod; Minic.Ast.And; Minic.Ast.Or; Minic.Ast.Xor;
                Minic.Ast.Shl; Minic.Ast.Shr; Minic.Ast.Lt; Minic.Ast.Le;
                Minic.Ast.Gt; Minic.Ast.Ge; Minic.Ast.Eq; Minic.Ast.Ne ]
            >>= fun op ->
            expr (n - 1) >>= fun a ->
            expr (n - 1) >>= fun b -> return (Minic.Ast.Bin (op, a, b)) );
          ( 1,
            oneofl [ Minic.Ast.Neg; Minic.Ast.Not; Minic.Ast.Bitnot ] >>= fun op ->
            expr (n - 1) >>= fun a -> return (Minic.Ast.Un (op, a)) );
          ( 1,
            name >>= fun f ->
            list_size (int_range 0 3) (expr (n - 1)) >>= fun args ->
            return (Minic.Ast.Call (f, args)) );
        ]
  in
  let rec stmt n =
    let e = expr 2 in
    if n = 0 then
      oneof
        [
          map2 (fun x v -> Minic.Ast.Set (x, v)) name e;
          map (fun v -> Minic.Ast.Ret v) e;
        ]
    else
      frequency
        [
          (3, map2 (fun x v -> Minic.Ast.Set (x, v)) name e);
          ( 2,
            name >>= fun a ->
            e >>= fun ix ->
            e >>= fun v -> return (Minic.Ast.Set_idx (a, ix, v)) );
          ( 1,
            e >>= fun c ->
            list_size (int_range 0 2) (stmt (n - 1)) >>= fun th ->
            list_size (int_range 0 2) (stmt (n - 1)) >>= fun el ->
            return (Minic.Ast.If (c, th, el)) );
          ( 1,
            e >>= fun c ->
            list_size (int_range 0 2) (stmt (n - 1)) >>= fun body ->
            return (Minic.Ast.While (c, body)) );
          ( 1,
            name >>= fun f ->
            list_size (int_range 0 2) (expr 1) >>= fun args ->
            return (Minic.Ast.Do (Minic.Ast.Call (f, args))) );
          (1, map (fun v -> Minic.Ast.Ret v) e);
        ]
  in
  let global =
    frequency
      [
        (2, map2 (fun n v -> Minic.Ast.Scalar (n, v)) name value);
        ( 1,
          name >>= fun n ->
          oneofl [ Minic.Ast.Word; Minic.Ast.Byte ] >>= fun elem ->
          int_range 1 8 >>= fun len -> return (Minic.Ast.Array (n, elem, len)) );
        ( 1,
          name >>= fun n ->
          oneofl [ Minic.Ast.Word; Minic.Ast.Byte ] >>= fun elem ->
          list_size (int_range 1 5) value >>= fun vs ->
          return (Minic.Ast.Array_init (n, elem, Array.of_list vs)) );
      ]
  in
  let func =
    name >>= fun fname ->
    list_size (int_range 0 3) name >>= fun params ->
    list_size (int_range 0 3) name >>= fun locals ->
    list_size (int_range 0 4) (stmt 2) >>= fun body ->
    return { Minic.Ast.name = fname; params; locals; body }
  in
  QCheck.Gen.(
    pair (list_size (int_range 0 3) global) (list_size (int_range 1 3) func)
    >>= fun (globals, funcs) -> return { Minic.Ast.globals; funcs })

let roundtrip_qtest =
  QCheck.Test.make ~count:500 ~name:"parse (pretty p) = p"
    (QCheck.make ~print:(fun p -> Minic.Pretty.to_string p) gen_program)
    (fun p ->
      match Minic.Parser.parse (Minic.Pretty.to_string p) with
      | Ok p' -> p = p'
      | Error _ -> false)

(* The parser must never escape with anything but its own Error (
   surfaced through the result) on arbitrary input. *)
let parser_total_qtest =
  QCheck.Test.make ~count:500 ~name:"parse is total on arbitrary strings"
    QCheck.(string_gen Gen.printable)
    (fun src ->
      match Minic.Parser.parse src with Ok _ | Error _ -> true)

let parser_total_bytes_qtest =
  QCheck.Test.make ~count:300 ~name:"parse is total on arbitrary bytes"
    QCheck.string
    (fun src ->
      match Minic.Parser.parse src with Ok _ | Error _ -> true)

(* --- Source-level end-to-end: parse, check, compile, simulate --- *)

let crc_source =
  "char msg[8] = {1, 2, 3, 4, 5, 6, 7, 8};\n\
   int crc(int len) {\n\
  \  int acc, k, j;\n\
  \  acc = 0xFFFF;\n\
  \  k = 0;\n\
  \  while (k < len) {\n\
  \    acc = acc ^ msg[k];\n\
  \    j = 0;\n\
  \    while (j < 8) {\n\
  \      if ((acc & 1) == 1) { acc = (acc >> 1) ^ 0x8408; } else { acc = acc >> 1; }\n\
  \      j = j + 1;\n\
  \    }\n\
  \    k = k + 1;\n\
  \  }\n\
  \  return acc;\n\
   }\n\
   int main() { return crc(8); }"

let test_source_end_to_end () =
  let p = parse_ok crc_source in
  Minic.Check.check_exn p;
  let interp = Minic.Interp.run p in
  let prog = Minic.Codegen.compile p in
  let cpu = Sim.Cpu.create Arch.Config.base prog ~mem_size:(1 lsl 16) in
  Sim.Cpu.run cpu;
  check_int "interp = simulated, from source text" interp (Sim.Cpu.result cpu);
  check_bool "nonzero checksum" true (interp <> 0)

let () =
  Alcotest.run "parser"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "line numbers" `Quick test_lexer_line_numbers;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "globals" `Quick test_parse_globals;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "control flow" `Quick test_parse_control_flow;
          Alcotest.test_case "if/else" `Quick test_parse_if_else;
          Alcotest.test_case "unary" `Quick test_parse_unary;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "benchmark sources" `Quick test_roundtrip_benchmarks;
          QCheck_alcotest.to_alcotest roundtrip_qtest;
          QCheck_alcotest.to_alcotest parser_total_qtest;
          QCheck_alcotest.to_alcotest parser_total_bytes_qtest;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "crc from source" `Quick test_source_end_to_end ] );
    ]
