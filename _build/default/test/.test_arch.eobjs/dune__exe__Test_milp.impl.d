test/test_milp.ml: Alcotest Array Float List Optim QCheck QCheck_alcotest
