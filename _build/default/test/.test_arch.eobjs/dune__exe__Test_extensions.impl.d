test/test_extensions.ml: Alcotest Apps Arch Array Dse Float Fmt Fun List Sim Str String Synth
