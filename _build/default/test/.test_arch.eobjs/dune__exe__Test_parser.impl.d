test/test_parser.ml: Alcotest Apps Arch Array Gen List Minic QCheck QCheck_alcotest Sim
