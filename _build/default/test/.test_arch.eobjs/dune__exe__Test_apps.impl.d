test/test_apps.ml: Alcotest Apps Arch Array Dse Float Isa Lazy List Minic Printf Sim String
