test/test_minic.ml: Alcotest Apps Arch Array Fmt Isa List Minic Printf QCheck QCheck_alcotest Result Sim Stdlib
