test/test_isa.ml: Alcotest Apps Arch Array Bytes Char Hashtbl Int32 Isa Lazy List Printf QCheck QCheck_alcotest Sim
