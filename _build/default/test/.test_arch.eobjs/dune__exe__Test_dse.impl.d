test/test_dse.ml: Alcotest Apps Arch Dse Float Lazy List Optim Printf Synth
