test/test_sim.ml: Alcotest Arch Array Bytes Fmt Isa List QCheck Sim Str String
