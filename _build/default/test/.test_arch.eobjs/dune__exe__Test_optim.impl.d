test/test_optim.ml: Alcotest Array Float List Optim QCheck
