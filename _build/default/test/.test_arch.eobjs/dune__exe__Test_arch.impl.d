test/test_arch.ml: Alcotest Arch List Printf
