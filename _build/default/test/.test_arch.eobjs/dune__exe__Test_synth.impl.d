test/test_synth.ml: Alcotest Arch Dse Fmt Gen List Printf QCheck QCheck_alcotest Sim Str String Synth
