type policy =
  | Random of Rng.t
  | Lrr of { next : int array }                 (* per-set round-robin *)
  | Lru of { stamps : int array; mutable clock : int }

type t = { ways : int; policy : policy }

let create repl ~sets ~ways ~rng =
  let policy =
    match repl with
    | Arch.Config.Random -> Random rng
    | Arch.Config.Lrr -> Lrr { next = Array.make sets 0 }
    | Arch.Config.Lru -> Lru { stamps = Array.make (sets * ways) 0; clock = 0 }
  in
  { ways; policy }

let touch t ~set ~way =
  match t.policy with
  | Random _ | Lrr _ -> ()
  | Lru l ->
      l.clock <- l.clock + 1;
      l.stamps.((set * t.ways) + way) <- l.clock

let filled t ~set ~way =
  match t.policy with
  | Random _ -> ()
  | Lrr l -> l.next.(set) <- (way + 1) mod t.ways
  | Lru l ->
      l.clock <- l.clock + 1;
      l.stamps.((set * t.ways) + way) <- l.clock

let victim t ~set =
  match t.policy with
  | Random rng -> Rng.bits16 rng mod t.ways
  | Lrr l -> l.next.(set)
  | Lru l ->
      let base = set * t.ways in
      let best = ref 0 in
      for w = 1 to t.ways - 1 do
        if l.stamps.(base + w) < l.stamps.(base + !best) then best := w
      done;
      !best

let reset t =
  match t.policy with
  | Random _ -> ()
  | Lrr l -> Array.fill l.next 0 (Array.length l.next) 0
  | Lru l ->
      Array.fill l.stamps 0 (Array.length l.stamps) 0;
      l.clock <- 0
