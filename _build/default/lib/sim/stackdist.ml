type t = {
  line_bytes : int;
  accesses : int;
  cold : int;
  hist : int array;  (* hist.(d) = accesses with stack distance d *)
}

(* Fenwick tree over [1..n] for prefix sums. *)
module Bit = struct
  type t = { a : int array }

  let create n = { a = Array.make (n + 1) 0 }

  let add t i v =
    let i = ref i in
    while !i < Array.length t.a do
      t.a.(!i) <- t.a.(!i) + v;
      i := !i + (!i land - !i)
    done

  let prefix t i =
    let i = ref i and s = ref 0 in
    while !i > 0 do
      s := !s + t.a.(!i);
      i := !i - (!i land - !i)
    done;
    !s
end

let analyze ~line_bytes trace =
  if line_bytes <= 0 then invalid_arg "Stackdist.analyze: line_bytes";
  let n = Array.length trace in
  let bit = Bit.create (n + 1) in
  let last = Hashtbl.create 4096 in
  let hist = Hashtbl.create 256 in
  let cold = ref 0 in
  let marked = ref 0 in
  for k = 0 to n - 1 do
    let line = trace.(k) / line_bytes in
    let time = k + 1 in
    (match Hashtbl.find_opt last line with
    | None -> incr cold
    | Some t0 ->
        (* Number of distinct lines accessed strictly after t0: marks
           in (t0, time). *)
        let d = !marked - Bit.prefix bit t0 in
        Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d));
        (* Unmark the previous occurrence: each line is marked only at
           its most recent access. *)
        Bit.add bit t0 (-1);
        decr marked);
    Bit.add bit time 1;
    incr marked;
    Hashtbl.replace last line time
  done;
  let max_d = Hashtbl.fold (fun d _ acc -> max d acc) hist 0 in
  let harr = Array.make (max_d + 1) 0 in
  Hashtbl.iter (fun d c -> harr.(d) <- c) hist;
  { line_bytes; accesses = n; cold = !cold; hist = harr }

let accesses t = t.accesses
let cold_misses t = t.cold

let misses t ~lines =
  if lines <= 0 then t.accesses
  else begin
    (* A distance-d access hits iff the cache holds at least d+1 lines
       (the line itself is at depth d from the top of the stack, with d
       distinct lines above it)... conventions vary; here distance d
       counts the distinct *other* lines touched since the last access,
       so the access hits iff lines > d. *)
    let m = ref t.cold in
    for d = 0 to Array.length t.hist - 1 do
      if d >= lines then m := !m + t.hist.(d)
    done;
    !m
  end

let miss_curve t ~capacities_kb =
  List.map
    (fun kb -> (kb, misses t ~lines:(kb * 1024 / t.line_bytes)))
    capacities_kb

let max_distance t =
  let rec go d = if d < 0 then 0 else if t.hist.(d) > 0 then d else go (d - 1) in
  go (Array.length t.hist - 1)
