(** Instruction-level execution tracing, for debugging programs and the
    timing model itself: each executed instruction is recorded with the
    cumulative cycle count after it completes, so stalls (cache fills,
    interlocks, multiplier latency, window traps) appear as jumps in
    the cycle column. *)

type entry = {
  step : int;          (** dynamic instruction number, from 0 *)
  pc : int;            (** instruction index executed *)
  insn : Isa.Insn.t;
  cycles_after : int;  (** profiler cycle count after the instruction *)
}

val run : ?limit:int -> Cpu.t -> entry list
(** Step the machine until [Halt] or [limit] instructions (default
    10,000), recording every step.  The machine keeps its final state,
    so callers can inspect registers afterwards or continue with
    {!Cpu.run}. *)

val pp : Format.formatter -> entry list -> unit
(** Listing with per-instruction cycle deltas. *)
