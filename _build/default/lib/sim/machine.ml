type result = {
  profile : Profiler.t;
  cold_cycles : int;
  warm_cycles : int;
  checksum : int;
}

let clock_hz = 25_000_000.0
let default_mem_size = 1 lsl 20

let run_once ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  Cpu.run cpu;
  cpu

let run ?(mem_size = default_mem_size) ?(reps = 1) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  Cpu.run cpu;
  let cold = Profiler.copy (Cpu.profile cpu) in
  let cold_sum = Cpu.result cpu in
  if reps = 1 then
    {
      profile = cold;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = cold.Profiler.cycles;
      checksum = cold_sum;
    }
  else begin
    Cpu.reset_profile cpu;
    Cpu.reinit cpu;
    Cpu.run cpu;
    let warm = Profiler.copy (Cpu.profile cpu) in
    let warm_sum = Cpu.result cpu in
    if warm_sum <> cold_sum then
      failwith
        (Printf.sprintf
           "Machine.run: non-deterministic application (cold checksum %d, warm %d)"
           cold_sum warm_sum);
    {
      profile = Profiler.scale_add cold ~warm ~reps;
      cold_cycles = cold.Profiler.cycles;
      warm_cycles = warm.Profiler.cycles;
      checksum = cold_sum;
    }
  end

let seconds r = float_of_int r.profile.Profiler.cycles /. clock_hz

let trace_reads ?(mem_size = default_mem_size) config prog =
  let cpu = Cpu.create config prog ~mem_size in
  let buf = Buffer.create (1 lsl 16) in
  Cpu.on_data_read cpu (fun addr ->
      Buffer.add_int32_le buf (Int32.of_int addr));
  Cpu.run cpu;
  let n = Buffer.length buf / 4 in
  let bytes = Buffer.to_bytes buf in
  Array.init n (fun k ->
      Int32.to_int (Bytes.get_int32_le bytes (4 * k)) land 0xFFFFFFFF)
