(** Functional-unit latencies for the configurable multiplier and
    divider variants of the LEON integer unit.

    Latencies are total cycles per operation (so the extra stall an
    instruction incurs is latency - 1).  A configuration without the
    hardware unit falls back to a software routine whose cost we charge
    as a fixed cycle count; see DESIGN.md for the substitution note. *)

val mul_latency : Arch.Config.multiplier -> int
val div_latency : Arch.Config.divider -> int
