type t = { data : Bytes.t }

exception Fault of string

let create ~size = { data = Bytes.make size '\000' }
let size t = Bytes.length t.data

let load_image t ~at image =
  Bytes.blit image 0 t.data at (Bytes.length image)

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let check t addr width =
  if addr < 0 || addr + width > Bytes.length t.data then
    fault "address 0x%x out of range (size 0x%x)" addr (Bytes.length t.data)
  else if addr land (width - 1) <> 0 then
    fault "misaligned %d-byte access at 0x%x" width addr

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data addr)

let read_u16 t addr =
  check t addr 2;
  Bytes.get_uint16_le t.data addr

let read_u32 t addr =
  check t addr 4;
  let lo = Bytes.get_uint16_le t.data addr in
  let hi = Bytes.get_uint16_le t.data (addr + 2) in
  lo lor (hi lsl 16)

let write_u8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let write_u16 t addr v =
  check t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let write_u32 t addr v =
  check t addr 4;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF);
  Bytes.set_uint16_le t.data (addr + 2) ((v lsr 16) land 0xFFFF)

let clear t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let read_first_cycles = 6
let read_next_cycles = 1
let write_cycles = 2
let line_fill_cycles ~line_words =
  read_first_cycles + ((line_words - 1) * read_next_cycles)
