(** Flat data memory with a burst-latency model.

    Addresses are byte addresses; all multi-byte accesses are little-
    endian and must be naturally aligned.  Latency constants model an
    external asynchronous SRAM behind the AHB bus, as on the paper's
    Liquid Architecture board. *)

type t

exception Fault of string
(** Raised on out-of-range or misaligned accesses. *)

val create : size:int -> t
val size : t -> int

val load_image : t -> at:int -> Bytes.t -> unit

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit

val clear : t -> unit

(** {2 Timing} *)

val read_first_cycles : int
(** Cycles to deliver the first word of a read burst. *)

val read_next_cycles : int
(** Cycles per subsequent word of a line fill. *)

val write_cycles : int
(** Cycles a (buffered) write-through occupies the bus. *)

val line_fill_cycles : line_words:int -> int
(** Latency of a full cache-line fill. *)
