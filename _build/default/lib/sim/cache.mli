(** Set-associative cache model (tags only — data lives in {!Memory}).

    Geometry follows LEON terminology: [ways] parallel ways
    (LEON "sets", 1..4), each way of [way_kb] kilobytes with lines of
    [line_words] 32-bit words.  All ways are indexed identically by the
    line-index bits of the address.

    The model is write-through with no write-allocate, like the LEON2
    data cache: a write hit updates the line (a no-op in a tags-only
    model), a write miss does not allocate. *)

type t

type stats = {
  mutable reads : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_misses : int;
}

val create :
  ways:int ->
  way_kb:int ->
  line_words:int ->
  replacement:Arch.Config.replacement ->
  rng:Rng.t ->
  t

val of_config : Arch.Config.cache -> rng:Rng.t -> t

val read : t -> int -> bool
(** [read t addr] probes and updates the cache for a read of [addr];
    returns [true] on hit.  A miss fills the line. *)

val write : t -> int -> bool
(** Write probe: [true] on hit.  Misses do not allocate. *)

val stats : t -> stats
val reset_stats : t -> unit
val clear : t -> unit
(** Invalidate all lines and reset replacement state and stats. *)

val line_bytes : t -> int
val sets : t -> int
(** Number of line indices per way. *)
