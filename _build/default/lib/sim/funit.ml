let mul_latency = function
  | Arch.Config.Mul_none -> 44        (* software shift-and-add routine *)
  | Arch.Config.Mul_iterative -> 35
  | Arch.Config.Mul_16x16 -> 5
  | Arch.Config.Mul_16x16_pipe -> 4
  | Arch.Config.Mul_32x8 -> 4
  | Arch.Config.Mul_32x16 -> 2
  | Arch.Config.Mul_32x32 -> 1

let div_latency = function
  | Arch.Config.Div_radix2 -> 35
  | Arch.Config.Div_none -> 180       (* software long-division routine *)
