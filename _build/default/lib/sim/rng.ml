type t = { mutable lfsr : int; mutable state : int }

let create ~seed =
  let lfsr = seed land 0xFFFF in
  { lfsr = (if lfsr = 0 then 0xACE1 else lfsr); state = seed }

(* 16-bit Galois LFSR, taps 16,14,13,11 (maximal period). *)
let bits16 t =
  let x = t.lfsr in
  let bit = x land 1 in
  let x = x lsr 1 in
  t.lfsr <- (if bit = 1 then x lxor 0xB400 else x);
  t.lfsr

(* splitmix-style mixing for workload generation, confined to OCaml's
   63-bit native int (constants truncated accordingly). *)
let next64 t =
  t.state <- (t.state + 0x1E3779B97F4A7C15) land max_int;
  let z = t.state in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  z lxor (z lsr 31)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive"
  else next64 t mod n

let copy t = { lfsr = t.lfsr; state = t.state }
