(** Cache replacement policy engines.

    One engine instance serves a whole cache (all sets).  The cache
    asks for a {!victim} way when it must evict, reports hits with
    {!touch} and fills with {!filled}; policies that do not care about
    a notification ignore it.

    - [Random]: LFSR-driven pick, as in LEON's pseudo-random policy.
    - [Lrr] (least recently replaced): round-robin / FIFO victim per
      set, valid only for 2-way caches in LEON but implemented for any
      associativity.
    - [Lru]: true least-recently-used via per-line use stamps. *)

type t

val create : Arch.Config.replacement -> sets:int -> ways:int -> rng:Rng.t -> t
val touch : t -> set:int -> way:int -> unit
val filled : t -> set:int -> way:int -> unit
val victim : t -> set:int -> int
val reset : t -> unit
