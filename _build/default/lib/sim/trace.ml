type entry = {
  step : int;
  pc : int;
  insn : Isa.Insn.t;
  cycles_after : int;
}

let run ?(limit = 10_000) cpu =
  let entries = ref [] in
  let k = ref 0 in
  let continue = ref (not (Cpu.halted cpu)) in
  while !continue && !k < limit do
    let pc = Cpu.pc cpu in
    let live = Cpu.step cpu in
    entries :=
      {
        step = !k;
        pc;
        insn = (Cpu.program cpu).Isa.Program.code.(pc);
        cycles_after = (Cpu.profile cpu).Profiler.cycles;
      }
      :: !entries;
    incr k;
    continue := live
  done;
  List.rev !entries

let pp ppf entries =
  let prev = ref 0 in
  Format.fprintf ppf "%6s %6s %7s %5s  %s@." "step" "pc" "cycles" "+cyc"
    "instruction";
  List.iter
    (fun e ->
      Format.fprintf ppf "%6d %6d %7d %5d  %s@." e.step e.pc e.cycles_after
        (e.cycles_after - !prev)
        (Isa.Insn.to_string e.insn);
      prev := e.cycles_after)
    entries
