(** Mattson stack-distance analysis: one pass over an address trace
    yields the LRU miss count for {e every} cache capacity at once.

    This supports the paper's future-work direction of cheaper
    design-space exploration ("smart sampling"): instead of simulating
    one cache size per run, a single traced execution predicts the full
    miss-rate curve of a fully-associative LRU cache — an upper-bound
    approximation for the set-associative LRU configurations of the
    design space.

    Distances are computed exactly in O(log n) per access with a
    Fenwick tree over access times. *)

type t

val analyze : line_bytes:int -> int array -> t
(** [analyze ~line_bytes trace] processes byte addresses in order;
    accesses are collapsed to cache lines of [line_bytes]. *)

val accesses : t -> int

val cold_misses : t -> int
(** First-touch (infinite-distance) accesses: compulsory misses. *)

val misses : t -> lines:int -> int
(** Misses of a fully-associative LRU cache holding [lines] lines. *)

val miss_curve : t -> capacities_kb:int list -> (int * int) list
(** [(kb, misses)] per capacity, with the trace's line size. *)

val max_distance : t -> int
(** Largest finite stack distance observed (the working-set size in
    lines: a cache this large incurs only cold misses). *)
