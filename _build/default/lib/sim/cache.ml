type stats = {
  mutable reads : int;
  mutable read_misses : int;
  mutable writes : int;
  mutable write_misses : int;
}

type t = {
  ways : int;
  line_bytes : int;
  sets : int;
  line_shift : int;
  set_shift : int;
  set_mask : int;
  tags : int array;     (* set-major: tags.(set * ways + way) *)
  valid : bool array;
  policy : Replacement.t;
  stats : stats;
}

let log2 n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  go 0

let create ~ways ~way_kb ~line_words ~replacement ~rng =
  if ways < 1 then invalid_arg "Cache.create: ways must be >= 1";
  let line_bytes = line_words * 4 in
  let sets = way_kb * 1024 / line_bytes in
  {
    ways;
    line_bytes;
    sets;
    line_shift = log2 line_bytes;
    set_shift = log2 sets;
    set_mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    valid = Array.make (sets * ways) false;
    policy = Replacement.create replacement ~sets ~ways ~rng;
    stats = { reads = 0; read_misses = 0; writes = 0; write_misses = 0 };
  }

let of_config (c : Arch.Config.cache) ~rng =
  create ~ways:c.ways ~way_kb:c.way_kb ~line_words:c.line_words
    ~replacement:c.replacement ~rng

(* Allocation-free probe: the way holding [addr]'s line, or -1.  The
   set/tag split is recomputed by callers from the same shifts (the
   simulator's hottest path; a returned tuple here measurably hurts
   multi-domain runs via minor-GC synchronization). *)
let find_way t ~set ~tag =
  let base = set * t.ways in
  let rec find w =
    if w = t.ways then -1
    else if t.valid.(base + w) && t.tags.(base + w) = tag then w
    else find (w + 1)
  in
  find 0

let fill t ~set ~tag =
  let base = set * t.ways in
  let rec first_invalid w =
    if w = t.ways then None
    else if not t.valid.(base + w) then Some w
    else first_invalid (w + 1)
  in
  let way =
    match first_invalid 0 with
    | Some w -> w
    | None -> Replacement.victim t.policy ~set
  in
  t.tags.(base + way) <- tag;
  t.valid.(base + way) <- true;
  Replacement.filled t.policy ~set ~way

let read t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let tag = line lsr t.set_shift in
  let way = find_way t ~set ~tag in
  t.stats.reads <- t.stats.reads + 1;
  if way >= 0 then begin
    Replacement.touch t.policy ~set ~way;
    true
  end
  else begin
    t.stats.read_misses <- t.stats.read_misses + 1;
    fill t ~set ~tag;
    false
  end

let write t addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let tag = line lsr t.set_shift in
  let way = find_way t ~set ~tag in
  t.stats.writes <- t.stats.writes + 1;
  if way >= 0 then begin
    Replacement.touch t.policy ~set ~way;
    true
  end
  else begin
    t.stats.write_misses <- t.stats.write_misses + 1;
    false
  end

let stats t = t.stats

let reset_stats t =
  t.stats.reads <- 0;
  t.stats.read_misses <- 0;
  t.stats.writes <- 0;
  t.stats.write_misses <- 0

let clear t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Replacement.reset t.policy;
  reset_stats t

let line_bytes t = t.line_bytes
let sets t = t.sets
