(** Deterministic pseudo-random number generation.

    The simulator must be a pure function of (configuration, program),
    so all randomness — the random cache-replacement pick and the
    synthetic workload contents — comes from explicitly seeded
    generators, never from the ambient [Stdlib.Random] state. *)

type t

val create : seed:int -> t

val bits16 : t -> int
(** Next value of a 16-bit Galois LFSR, in \[1, 0xFFFF\].  This mirrors
    the hardware pseudo-random source LEON uses for random cache
    replacement. *)

val int : t -> int -> int
(** [int t n] is uniform-ish in \[0, n). [n] must be positive. *)

val copy : t -> t
