lib/sim/memory.ml: Bytes Char Printf
