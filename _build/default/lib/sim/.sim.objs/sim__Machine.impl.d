lib/sim/machine.ml: Array Buffer Bytes Cpu Int32 Printf Profiler
