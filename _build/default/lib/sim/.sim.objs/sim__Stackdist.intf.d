lib/sim/stackdist.mli:
