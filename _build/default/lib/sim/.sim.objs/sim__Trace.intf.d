lib/sim/trace.mli: Cpu Format Isa
