lib/sim/cpu.mli: Arch Cache Isa Memory Profiler
