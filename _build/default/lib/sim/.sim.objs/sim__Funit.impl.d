lib/sim/funit.ml: Arch
