lib/sim/replacement.mli: Arch Rng
