lib/sim/machine.mli: Arch Cpu Isa Profiler
