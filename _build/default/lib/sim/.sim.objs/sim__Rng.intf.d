lib/sim/rng.mli:
