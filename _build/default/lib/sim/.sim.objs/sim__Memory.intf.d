lib/sim/memory.mli: Bytes
