lib/sim/trace.ml: Array Cpu Format Isa List Profiler
