lib/sim/stackdist.ml: Array Hashtbl List Option
