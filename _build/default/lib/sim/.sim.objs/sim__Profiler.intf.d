lib/sim/profiler.mli: Fmt
