lib/sim/cache.ml: Arch Array Replacement
