lib/sim/cache.mli: Arch Rng
