lib/sim/cpu.ml: Arch Array Cache Funit Isa List Memory Printf Profiler Rng
