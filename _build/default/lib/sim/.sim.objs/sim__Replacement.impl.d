lib/sim/replacement.ml: Arch Array Rng
