lib/sim/funit.mli: Arch
