lib/sim/rng.ml:
