lib/sim/profiler.ml: Fmt
