lib/minic/lexer.mli:
