lib/minic/ast.mli: Fmt
