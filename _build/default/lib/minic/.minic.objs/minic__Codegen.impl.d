lib/minic/codegen.ml: Array Ast Bytes Char Check Hashtbl Isa List Optimize Printf String
