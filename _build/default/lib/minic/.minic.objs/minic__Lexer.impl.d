lib/minic/lexer.ml: Printf String
