lib/minic/codegen.mli: Ast Isa
