lib/minic/pretty.ml: Array Ast Buffer List Printf String
