lib/minic/optimize.ml: Ast List String
