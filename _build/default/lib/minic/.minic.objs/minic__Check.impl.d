lib/minic/check.ml: Ast Hashtbl List Printf String
