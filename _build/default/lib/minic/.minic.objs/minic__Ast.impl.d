lib/minic/ast.ml: Array Fmt
