let binop_symbol = function
  | Ast.Add -> "+" | Ast.Sub -> "-" | Ast.Mul -> "*" | Ast.Div -> "/"
  | Ast.Mod -> "%" | Ast.And -> "&" | Ast.Or -> "|" | Ast.Xor -> "^"
  | Ast.Shl -> "<<" | Ast.Shr -> ">>"
  | Ast.Lt -> "<" | Ast.Le -> "<=" | Ast.Gt -> ">" | Ast.Ge -> ">="
  | Ast.Eq -> "==" | Ast.Ne -> "!="

let rec expr buf e =
  match e with
  | Ast.Int n ->
      if n < 0 then begin
        (* Negative literals print as parenthesized negations of the
           magnitude so the parser's unary minus reconstructs them;
           min_int magnitudes stay in range because minic ints are
           32-bit values inside a 63-bit OCaml int. *)
        Buffer.add_string buf "(-";
        Buffer.add_string buf (string_of_int (-n));
        Buffer.add_char buf ')'
      end
      else Buffer.add_string buf (string_of_int n)
  | Ast.Var x -> Buffer.add_string buf x
  | Ast.Idx (a, ix) ->
      Buffer.add_string buf a;
      Buffer.add_char buf '[';
      expr buf ix;
      Buffer.add_char buf ']'
  | Ast.Bin (op, a, b) ->
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_symbol op);
      Buffer.add_char buf ' ';
      expr buf b;
      Buffer.add_char buf ')'
  | Ast.Un (op, a) ->
      (* The operand gets its own parentheses so that "-(5)" (an
         explicit negation node) stays distinct from the folded
         literal "-5". *)
      Buffer.add_char buf '(';
      Buffer.add_string buf
        (match op with Ast.Neg -> "-" | Ast.Not -> "!" | Ast.Bitnot -> "~");
      Buffer.add_char buf '(';
      expr buf a;
      Buffer.add_string buf "))"
  | Ast.Call (f, args) ->
      Buffer.add_string buf f;
      Buffer.add_char buf '(';
      List.iteri
        (fun k a ->
          if k > 0 then Buffer.add_string buf ", ";
          expr buf a)
        args;
      Buffer.add_char buf ')'

let rec stmt buf indent s =
  let pad () = Buffer.add_string buf (String.make indent ' ') in
  match s with
  | Ast.Set (x, e) ->
      pad ();
      Buffer.add_string buf x;
      Buffer.add_string buf " = ";
      expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.Set_idx (a, ix, e) ->
      pad ();
      Buffer.add_string buf a;
      Buffer.add_char buf '[';
      expr buf ix;
      Buffer.add_string buf "] = ";
      expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.If (c, th, el) ->
      pad ();
      Buffer.add_string buf "if (";
      expr buf c;
      Buffer.add_string buf ") {\n";
      List.iter (stmt buf (indent + 2)) th;
      pad ();
      if el = [] then Buffer.add_string buf "}\n"
      else begin
        Buffer.add_string buf "} else {\n";
        List.iter (stmt buf (indent + 2)) el;
        pad ();
        Buffer.add_string buf "}\n"
      end
  | Ast.While (c, body) ->
      pad ();
      Buffer.add_string buf "while (";
      expr buf c;
      Buffer.add_string buf ") {\n";
      List.iter (stmt buf (indent + 2)) body;
      pad ();
      Buffer.add_string buf "}\n"
  | Ast.Do e ->
      pad ();
      expr buf e;
      Buffer.add_string buf ";\n"
  | Ast.Ret e ->
      pad ();
      Buffer.add_string buf "return ";
      expr buf e;
      Buffer.add_string buf ";\n"

let global buf g =
  (match g with
  | Ast.Scalar (n, v) ->
      Buffer.add_string buf (Printf.sprintf "int %s = %d;\n" n v)
  | Ast.Array (n, elem, len) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s[%d];\n"
           (match elem with Ast.Word -> "int" | Ast.Byte -> "char")
           n len)
  | Ast.Array_init (n, elem, values) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s[%d] = {"
           (match elem with Ast.Word -> "int" | Ast.Byte -> "char")
           n (Array.length values));
      Array.iteri
        (fun k v ->
          if k > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (string_of_int v))
        values;
      Buffer.add_string buf "};\n");
  ()

let func buf (f : Ast.func) =
  Buffer.add_string buf "int ";
  Buffer.add_string buf f.name;
  Buffer.add_char buf '(';
  List.iteri
    (fun k p ->
      if k > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf "int ";
      Buffer.add_string buf p)
    f.params;
  Buffer.add_string buf ") {\n";
  if f.locals <> [] then begin
    Buffer.add_string buf "  int ";
    Buffer.add_string buf (String.concat ", " f.locals);
    Buffer.add_string buf ";\n"
  end;
  List.iter (stmt buf 2) f.body;
  Buffer.add_string buf "}\n\n"

let to_string (p : Ast.program) =
  let buf = Buffer.create 1024 in
  List.iter (global buf) p.globals;
  if p.globals <> [] then Buffer.add_char buf '\n';
  List.iter (func buf) p.funcs;
  Buffer.contents buf

let expr_to_string e =
  let buf = Buffer.create 64 in
  expr buf e;
  Buffer.contents buf

let stmt_to_string s =
  let buf = Buffer.create 64 in
  stmt buf 0 s;
  Buffer.contents buf
