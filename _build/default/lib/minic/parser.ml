exception Error of { line : int; message : string }

type state = { lx : Lexer.t }

let fail_at line fmt =
  Printf.ksprintf (fun message -> raise (Error { line; message })) fmt

let fail st fmt = fail_at (Lexer.line st.lx) fmt

let next st = Lexer.next st.lx
let peek st = Lexer.peek st.lx

let expect st tok what =
  let got, line = next st in
  if got <> tok then
    fail_at line "expected %s, found %s" what (Lexer.token_to_string got)

let expect_ident st what =
  match next st with
  | Lexer.IDENT s, _ -> s
  | got, line -> fail_at line "expected %s, found %s" what (Lexer.token_to_string got)

let expect_int st what =
  match next st with
  | Lexer.INT n, _ -> n
  | Lexer.MINUS, _ -> (
      match next st with
      | Lexer.INT n, _ -> -n
      | got, line ->
          fail_at line "expected %s, found -%s" what (Lexer.token_to_string got))
  | got, line -> fail_at line "expected %s, found %s" what (Lexer.token_to_string got)

(* --- expressions, precedence climbing --- *)

(* Levels, loosest to tightest. *)
let binop_levels : (Lexer.token * Ast.binop) list list =
  [
    [ (Lexer.PIPE, Ast.Or) ];
    [ (Lexer.CARET, Ast.Xor) ];
    [ (Lexer.AMP, Ast.And) ];
    [ (Lexer.EQEQ, Ast.Eq); (Lexer.NE, Ast.Ne) ];
    [ (Lexer.LT, Ast.Lt); (Lexer.LE, Ast.Le); (Lexer.GT, Ast.Gt); (Lexer.GE, Ast.Ge) ];
    [ (Lexer.SHL, Ast.Shl); (Lexer.SHR, Ast.Shr) ];
    [ (Lexer.PLUS, Ast.Add); (Lexer.MINUS, Ast.Sub) ];
    [ (Lexer.STAR, Ast.Mul); (Lexer.SLASH, Ast.Div); (Lexer.PERCENT, Ast.Mod) ];
  ]

let rec parse_level st levels =
  match levels with
  | [] -> parse_unary st
  | ops :: tighter ->
      let lhs = ref (parse_level st tighter) in
      let continue = ref true in
      while !continue do
        match List.assoc_opt (peek st) ops with
        | Some op ->
            ignore (next st);
            let rhs = parse_level st tighter in
            lhs := Ast.Bin (op, !lhs, rhs)
        | None -> continue := false
      done;
      !lhs

and parse_unary st =
  match peek st with
  | Lexer.MINUS -> (
      ignore (next st);
      (* Fold "-<literal>" lexically into a negative literal; an
         explicit negation like "-(5)" stays a negation node. *)
      match peek st with
      | Lexer.INT n ->
          ignore (next st);
          Ast.Int (-n)
      | _ -> Ast.Un (Ast.Neg, parse_unary st))
  | Lexer.BANG ->
      ignore (next st);
      Ast.Un (Ast.Not, parse_unary st)
  | Lexer.TILDE ->
      ignore (next st);
      Ast.Un (Ast.Bitnot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match next st with
  | Lexer.INT n, _ -> Ast.Int n
  | Lexer.LPAREN, _ ->
      let e = parse_expr st in
      expect st Lexer.RPAREN "')'";
      e
  | Lexer.IDENT name, _ -> (
      match peek st with
      | Lexer.LBRACKET ->
          ignore (next st);
          let e = parse_expr st in
          expect st Lexer.RBRACKET "']'";
          Ast.Idx (name, e)
      | Lexer.LPAREN ->
          ignore (next st);
          Ast.Call (name, parse_args st)
      | _ -> Ast.Var name)
  | got, line -> fail_at line "expected expression, found %s" (Lexer.token_to_string got)

and parse_args st =
  if peek st = Lexer.RPAREN then begin
    ignore (next st);
    []
  end
  else
    let rec more acc =
      let acc = parse_expr st :: acc in
      match next st with
      | Lexer.COMMA, _ -> more acc
      | Lexer.RPAREN, _ -> List.rev acc
      | got, line ->
          fail_at line "expected ',' or ')', found %s" (Lexer.token_to_string got)
    in
    more []

and parse_expr st = parse_level st binop_levels

(* --- statements --- *)

let rec parse_stmt st =
  match next st with
  | Lexer.KW_IF, _ ->
      expect st Lexer.LPAREN "'(' after if";
      let c = parse_expr st in
      expect st Lexer.RPAREN "')'";
      let th = parse_block st in
      let el =
        if peek st = Lexer.KW_ELSE then begin
          ignore (next st);
          parse_block st
        end
        else []
      in
      Ast.If (c, th, el)
  | Lexer.KW_WHILE, _ ->
      expect st Lexer.LPAREN "'(' after while";
      let c = parse_expr st in
      expect st Lexer.RPAREN "')'";
      Ast.While (c, parse_block st)
  | Lexer.KW_RETURN, _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI "';'";
      Ast.Ret e
  | Lexer.IDENT name, _ -> (
      match next st with
      | Lexer.ASSIGN, _ ->
          let e = parse_expr st in
          expect st Lexer.SEMI "';'";
          Ast.Set (name, e)
      | Lexer.LBRACKET, _ ->
          let ix = parse_expr st in
          expect st Lexer.RBRACKET "']'";
          expect st Lexer.ASSIGN "'='";
          let e = parse_expr st in
          expect st Lexer.SEMI "';'";
          Ast.Set_idx (name, ix, e)
      | Lexer.LPAREN, _ ->
          let args = parse_args st in
          expect st Lexer.SEMI "';'";
          Ast.Do (Ast.Call (name, args))
      | got, line ->
          fail_at line "expected '=', '[' or '(' after %s, found %s" name
            (Lexer.token_to_string got))
  | got, line -> fail_at line "expected statement, found %s" (Lexer.token_to_string got)

and parse_block st =
  expect st Lexer.LBRACE "'{'";
  let rec stmts acc =
    if peek st = Lexer.RBRACE then begin
      ignore (next st);
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  stmts []

(* --- declarations --- *)

let parse_init_list st =
  expect st Lexer.LBRACE "'{'";
  if peek st = Lexer.RBRACE then begin
    ignore (next st);
    [||]
  end
  else
    let rec more acc =
      let v = expect_int st "integer initializer" in
      match next st with
      | Lexer.COMMA, _ -> more (v :: acc)
      | Lexer.RBRACE, _ -> Array.of_list (List.rev (v :: acc))
      | got, line ->
          fail_at line "expected ',' or '}', found %s" (Lexer.token_to_string got)
    in
    more []

(* After 'int'/'char' IDENT at top level, when not a function. *)
let parse_global_rest st elem name =
  match next st with
  | Lexer.SEMI, _ ->
      if elem = Ast.Byte then
        fail st "char globals must be arrays (char %s[...])" name
      else Ast.Scalar (name, 0)
  | Lexer.ASSIGN, _ ->
      if elem = Ast.Byte then
        fail st "char globals must be arrays (char %s[...])" name
      else begin
        let v = expect_int st "initializer" in
        expect st Lexer.SEMI "';'";
        Ast.Scalar (name, v)
      end
  | Lexer.LBRACKET, _ -> (
      let len = expect_int st "array length" in
      expect st Lexer.RBRACKET "']'";
      match next st with
      | Lexer.SEMI, _ -> Ast.Array (name, elem, len)
      | Lexer.ASSIGN, line ->
          let values = parse_init_list st in
          expect st Lexer.SEMI "';'";
          if Array.length values <> len then
            fail_at line "array %s declared with length %d but %d initializers"
              name len (Array.length values);
          Ast.Array_init (name, elem, values)
      | got, line ->
          fail_at line "expected ';' or '=', found %s" (Lexer.token_to_string got))
  | got, line ->
      fail_at line "expected ';', '=' or '[', found %s" (Lexer.token_to_string got)

let parse_params st =
  expect st Lexer.LPAREN "'('";
  if peek st = Lexer.RPAREN then begin
    ignore (next st);
    []
  end
  else
    let rec more acc =
      expect st Lexer.KW_INT "'int' parameter type";
      let p = expect_ident st "parameter name" in
      match next st with
      | Lexer.COMMA, _ -> more (p :: acc)
      | Lexer.RPAREN, _ -> List.rev (p :: acc)
      | got, line ->
          fail_at line "expected ',' or ')', found %s" (Lexer.token_to_string got)
    in
    more []

let parse_locals st =
  let rec decls acc =
    if peek st = Lexer.KW_INT then begin
      ignore (next st);
      let rec names acc =
        let n = expect_ident st "local name" in
        match next st with
        | Lexer.COMMA, _ -> names (n :: acc)
        | Lexer.SEMI, _ -> List.rev (n :: acc)
        | got, line ->
            fail_at line "expected ',' or ';', found %s" (Lexer.token_to_string got)
      in
      decls (acc @ names [])
    end
    else acc
  in
  decls []

let parse_func st name =
  let params = parse_params st in
  expect st Lexer.LBRACE "'{'";
  let locals = parse_locals st in
  let rec stmts acc =
    if peek st = Lexer.RBRACE then begin
      ignore (next st);
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  let body = stmts [] in
  { Ast.name; params; locals; body }

let parse_program st =
  let rec items globals funcs =
    match next st with
    | Lexer.EOF, _ -> { Ast.globals = List.rev globals; funcs = List.rev funcs }
    | Lexer.KW_INT, _ ->
        let name = expect_ident st "name" in
        if peek st = Lexer.LPAREN then
          items globals (parse_func st name :: funcs)
        else items (parse_global_rest st Ast.Word name :: globals) funcs
    | Lexer.KW_CHAR, _ ->
        let name = expect_ident st "name" in
        items (parse_global_rest st Ast.Byte name :: globals) funcs
    | got, line ->
        fail_at line "expected declaration, found %s" (Lexer.token_to_string got)
  in
  items [] []

let parse_exn src =
  let st = { lx = Lexer.create src } in
  try parse_program st
  with Lexer.Error { line; message } -> raise (Error { line; message })

let parse src =
  match parse_exn src with
  | p -> Ok p
  | exception Error { line; message } ->
      Result.Error (Printf.sprintf "line %d: %s" line message)
