(** Source-level pretty-printer: emits concrete syntax that
    {!Parser.parse} accepts, such that [parse (to_string p)] yields a
    program structurally equal to [p].  Expressions are fully
    parenthesized, so the round trip is exact regardless of operator
    precedence. *)

val expr_to_string : Ast.expr -> string
val stmt_to_string : Ast.stmt -> string
val to_string : Ast.program -> string
