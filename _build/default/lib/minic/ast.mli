(** Abstract syntax of minic, the small imperative language the
    benchmark applications are written in.

    All values are 32-bit integers with wrap-around arithmetic;
    division and modulo are signed and truncate toward zero; shifts use
    the low five bits of the shift amount; comparisons yield 0 or 1.
    Arrays are global, of 32-bit words or bytes; scalars are globals,
    parameters or locals.

    Restrictions (enforced by {!Check}): at most 6 parameters and 8
    locals per function, function calls only in "statement position"
    (the whole right-hand side of an assignment, a [Do], or a [Ret])
    with call-free arguments, and bounded expression depth.  These
    match the code generator's register budget. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not | Bitnot

type expr =
  | Int of int
  | Var of string
  | Idx of string * expr            (** [arr\[e\]] *)
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type stmt =
  | Set of string * expr
  | Set_idx of string * expr * expr (** [arr\[e1\] = e2] *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do of expr                      (** call for effect *)
  | Ret of expr

type elem = Word | Byte

type global =
  | Scalar of string * int
  | Array of string * elem * int          (** zero-initialized, length *)
  | Array_init of string * elem * int array

type func = {
  name : string;
  params : string list;
  locals : string list;
  body : stmt list;
}

type program = { globals : global list; funcs : func list }
(** Execution begins at the parameterless function ["main"]; its return
    value is the program's checksum. *)

val global_name : global -> string

(** {2 Construction helpers} *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( % ) : expr -> expr -> expr
val ( &&& ) : expr -> expr -> expr
val ( ||| ) : expr -> expr -> expr
val ( ^^^ ) : expr -> expr -> expr
val ( <<< ) : expr -> expr -> expr
val ( >>> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val i : int -> expr
val v : string -> expr
val idx : string -> expr -> expr

val pp_expr : expr Fmt.t
val pp_stmt : stmt Fmt.t
val pp_program : program Fmt.t
