(** Recursive-descent parser for minic's concrete syntax.

    {[
      int table[256];
      char msg[5] = {104, 101, 108, 108, 111};
      int total = 0;

      int weigh(int x) {
        int acc, k;
        acc = 0;
        k = 0;
        while (k < 5) {
          acc = acc + msg[k] * x;
          k = k + 1;
        }
        return acc;
      }

      int main() {
        total = weigh(3);
        if (total > 1000) { return total; } else { return 0; }
      }
    ]}

    Precedence, tightest first: unary [- ! ~]; [* / %]; [+ -];
    [<< >>]; [< <= > >=]; [== !=]; [&]; [^]; [|] — C-like except that
    shifts bind tighter than comparisons.  All values are 32-bit ints;
    [char] is only meaningful for byte arrays.  The result still has to
    pass {!Check.check} before compilation. *)

exception Error of { line : int; message : string }

val parse : string -> (Ast.program, string) result
val parse_exn : string -> Ast.program
(** @raise Error with position information. *)
