type token =
  | INT of int
  | IDENT of string
  | KW_INT | KW_CHAR | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR | TILDE | BANG
  | LT | LE | GT | GE | EQEQ | NE
  | ASSIGN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | EOF

exception Error of { line : int; message : string }

type t = {
  src : string;
  mutable pos : int;
  mutable line_nr : int;
  mutable lookahead : (token * int) option;
}

let create src = { src; pos = 0; line_nr = 1; lookahead = None }

let error t fmt =
  Printf.ksprintf (fun message -> raise (Error { line = t.line_nr; message })) fmt

let at_end t = t.pos >= String.length t.src
let cur t = t.src.[t.pos]

let advance t =
  if not (at_end t) then begin
    if cur t = '\n' then t.line_nr <- t.line_nr + 1;
    t.pos <- t.pos + 1
  end

let rec skip_ws t =
  if at_end t then ()
  else
    match cur t with
    | ' ' | '\t' | '\r' | '\n' ->
        advance t;
        skip_ws t
    | '/' when t.pos + 1 < String.length t.src -> (
        match t.src.[t.pos + 1] with
        | '/' ->
            while (not (at_end t)) && cur t <> '\n' do
              advance t
            done;
            skip_ws t
        | '*' ->
            advance t;
            advance t;
            let rec close () =
              if at_end t then error t "unterminated block comment"
              else if
                cur t = '*'
                && t.pos + 1 < String.length t.src
                && t.src.[t.pos + 1] = '/'
              then begin
                advance t;
                advance t
              end
              else begin
                advance t;
                close ()
              end
            in
            close ();
            skip_ws t
        | _ -> ())
    | _ -> ()

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident c = is_ident_start c || is_digit c

let keyword = function
  | "int" -> Some KW_INT
  | "char" -> Some KW_CHAR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "return" -> Some KW_RETURN
  | _ -> None

let lex_number t =
  let start = t.pos in
  if
    cur t = '0'
    && t.pos + 1 < String.length t.src
    && (t.src.[t.pos + 1] = 'x' || t.src.[t.pos + 1] = 'X')
  then begin
    advance t;
    advance t;
    let hstart = t.pos in
    while (not (at_end t)) && is_hex (cur t) do
      advance t
    done;
    if t.pos = hstart then error t "empty hexadecimal literal";
    INT (int_of_string (String.sub t.src start (t.pos - start)))
  end
  else begin
    while (not (at_end t)) && is_digit (cur t) do
      advance t
    done;
    INT (int_of_string (String.sub t.src start (t.pos - start)))
  end

let lex_ident t =
  let start = t.pos in
  while (not (at_end t)) && is_ident (cur t) do
    advance t
  done;
  let s = String.sub t.src start (t.pos - start) in
  match keyword s with Some k -> k | None -> IDENT s

let two t a single double =
  advance t;
  if (not (at_end t)) && cur t = a then begin
    advance t;
    double
  end
  else single

let raw_next t =
  skip_ws t;
  let line = t.line_nr in
  if at_end t then (EOF, line)
  else
    let tok =
      match cur t with
      | c when is_digit c -> lex_number t
      | c when is_ident_start c -> lex_ident t
      | '+' -> advance t; PLUS
      | '-' -> advance t; MINUS
      | '*' -> advance t; STAR
      | '/' -> advance t; SLASH
      | '%' -> advance t; PERCENT
      | '&' -> advance t; AMP
      | '|' -> advance t; PIPE
      | '^' -> advance t; CARET
      | '~' -> advance t; TILDE
      | '(' -> advance t; LPAREN
      | ')' -> advance t; RPAREN
      | '{' -> advance t; LBRACE
      | '}' -> advance t; RBRACE
      | '[' -> advance t; LBRACKET
      | ']' -> advance t; RBRACKET
      | ',' -> advance t; COMMA
      | ';' -> advance t; SEMI
      | '<' ->
          advance t;
          if not (at_end t) then
            if cur t = '<' then (advance t; SHL)
            else if cur t = '=' then (advance t; LE)
            else LT
          else LT
      | '>' ->
          advance t;
          if not (at_end t) then
            if cur t = '>' then (advance t; SHR)
            else if cur t = '=' then (advance t; GE)
            else GT
          else GT
      | '=' -> two t '=' ASSIGN EQEQ
      | '!' -> two t '=' BANG NE
      | c -> error t "unexpected character %C" c
    in
    (tok, line)

let next t =
  match t.lookahead with
  | Some tk ->
      t.lookahead <- None;
      tk
  | None -> raw_next t

let peek t =
  match t.lookahead with
  | Some (tok, _) -> tok
  | None ->
      let tk = raw_next t in
      t.lookahead <- Some tk;
      fst tk

let line t = t.line_nr

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_INT -> "int"
  | KW_CHAR -> "char"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_RETURN -> "return"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQEQ -> "=="
  | NE -> "!="
  | ASSIGN -> "="
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | EOF -> "<eof>"
