(** Hand-written lexer for minic's concrete syntax.

    Tokens cover a small C dialect: integer literals (decimal and hex),
    identifiers, keywords ([int], [char], [if], [else], [while],
    [return], [locals]), operators and punctuation.  Comments are
    [// line] and [/* block */]. *)

type token =
  | INT of int
  | IDENT of string
  | KW_INT | KW_CHAR | KW_IF | KW_ELSE | KW_WHILE | KW_RETURN
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | SHL | SHR | TILDE | BANG
  | LT | LE | GT | GE | EQEQ | NE
  | ASSIGN
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | COMMA | SEMI
  | EOF

exception Error of { line : int; message : string }

type t

val create : string -> t
val next : t -> token * int
(** Token and its line number. *)

val peek : t -> token
val line : t -> int

val token_to_string : token -> string
