let mask32 = 0xFFFFFFFF
let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let bool01 b = if b then 1 else 0

(* Pure evaluation of an operator over literals; [None] when folding
   must not happen (division by zero stays a runtime event). *)
let fold_binop op a b =
  let a = a land mask32 and b = b land mask32 in
  match op with
  | Ast.Add -> Some ((a + b) land mask32)
  | Ast.Sub -> Some ((a - b) land mask32)
  | Ast.Mul -> Some (a * b land mask32)
  | Ast.Div ->
      if b = 0 then None else Some (to_signed a / to_signed b land mask32)
  | Ast.Mod ->
      if b = 0 then None
      else
        let q = to_signed a / to_signed b in
        Some ((to_signed a - (q * to_signed b)) land mask32)
  | Ast.And -> Some (a land b)
  | Ast.Or -> Some (a lor b)
  | Ast.Xor -> Some (a lxor b)
  | Ast.Shl -> Some ((a lsl (b land 31)) land mask32)
  | Ast.Shr -> Some (a lsr (b land 31))
  | Ast.Lt -> Some (bool01 (to_signed a < to_signed b))
  | Ast.Le -> Some (bool01 (to_signed a <= to_signed b))
  | Ast.Gt -> Some (bool01 (to_signed a > to_signed b))
  | Ast.Ge -> Some (bool01 (to_signed a >= to_signed b))
  | Ast.Eq -> Some (bool01 (a = b))
  | Ast.Ne -> Some (bool01 (a <> b))

let fold_unop op a =
  let a = a land mask32 in
  match op with
  | Ast.Neg -> (0 - a) land mask32
  | Ast.Not -> bool01 (a = 0)
  | Ast.Bitnot -> a lxor mask32

let invert_cmp = function
  | Ast.Lt -> Some Ast.Ge
  | Ast.Ge -> Some Ast.Lt
  | Ast.Le -> Some Ast.Gt
  | Ast.Gt -> Some Ast.Le
  | Ast.Eq -> Some Ast.Ne
  | Ast.Ne -> Some Ast.Eq
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.And | Ast.Or
  | Ast.Xor | Ast.Shl | Ast.Shr ->
      None

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go k = if 1 lsl k = v then k else go (k + 1) in
  go 0

(* Algebraic identities on an already-optimized node. *)
let simplify = function
  | Ast.Bin (op, a, b) as e -> (
      match (op, a, b) with
      | (Ast.Add | Ast.Or | Ast.Xor | Ast.Sub | Ast.Shl | Ast.Shr), x, Ast.Int 0 -> x
      | (Ast.Add | Ast.Or | Ast.Xor), Ast.Int 0, x -> x
      | (Ast.Mul | Ast.And), _, Ast.Int 0 -> Ast.Int 0
      | (Ast.Mul | Ast.And), Ast.Int 0, _ -> Ast.Int 0
      | (Ast.Mul | Ast.Div), x, Ast.Int 1 -> x
      | Ast.Mul, Ast.Int 1, x -> x
      | Ast.And, x, Ast.Int 0xFFFFFFFF -> x
      | Ast.And, Ast.Int 0xFFFFFFFF, x -> x
      | Ast.Mul, x, Ast.Int n when is_pow2 n -> Ast.Bin (Ast.Shl, x, Ast.Int (log2 n))
      | Ast.Mul, Ast.Int n, x when is_pow2 n -> Ast.Bin (Ast.Shl, x, Ast.Int (log2 n))
      | _ -> e)
  | Ast.Un (Ast.Not, Ast.Bin (op, a, b)) as e -> (
      match invert_cmp op with
      | Some op' -> Ast.Bin (op', a, b)
      | None -> e)
  | Ast.Un (Ast.Neg, Ast.Un (Ast.Neg, x)) -> x
  | Ast.Un (Ast.Bitnot, Ast.Un (Ast.Bitnot, x)) -> x
  | e -> e

let rec expr e =
  match e with
  | Ast.Int n -> Ast.Int (n land mask32)
  | Ast.Var _ -> e
  | Ast.Idx (a, ix) -> Ast.Idx (a, expr ix)
  | Ast.Un (op, a) -> (
      match expr a with
      | Ast.Int n -> Ast.Int (fold_unop op n)
      | a' -> simplify (Ast.Un (op, a')))
  | Ast.Bin (op, a, b) -> (
      let a' = expr a and b' = expr b in
      match (a', b') with
      | Ast.Int x, Ast.Int y -> (
          match fold_binop op x y with
          | Some v -> Ast.Int v
          | None -> Ast.Bin (op, a', b'))
      | _ -> simplify (Ast.Bin (op, a', b')))
  | Ast.Call (f, args) -> Ast.Call (f, List.map expr args)

let rec stmt s =
  match s with
  | Ast.Set (x, e) -> (
      match expr e with
      (* A self-assignment of a pure expression is dead. *)
      | Ast.Var y when String.equal x y -> []
      | e' -> [ Ast.Set (x, e') ])
  | Ast.Set_idx (a, ix, e) -> [ Ast.Set_idx (a, expr ix, expr e) ]
  | Ast.Do e -> [ Ast.Do (expr e) ]
  | Ast.Ret e -> [ Ast.Ret (expr e) ]
  | Ast.If (c, th, el) -> (
      match expr c with
      | Ast.Int 0 -> block el
      | Ast.Int _ -> block th
      | c' -> [ Ast.If (c', block th, block el) ])
  | Ast.While (c, body) -> (
      match expr c with
      | Ast.Int 0 -> []
      | c' -> [ Ast.While (c', block body) ])

and block stmts = List.concat_map stmt stmts

let func (f : Ast.func) = { f with Ast.body = block f.Ast.body }

let program (p : Ast.program) = { p with Ast.funcs = List.map func p.Ast.funcs }
