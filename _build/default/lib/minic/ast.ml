type binop =
  | Add | Sub | Mul | Div | Mod
  | And | Or | Xor | Shl | Shr
  | Lt | Le | Gt | Ge | Eq | Ne

type unop = Neg | Not | Bitnot

type expr =
  | Int of int
  | Var of string
  | Idx of string * expr
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Call of string * expr list

type stmt =
  | Set of string * expr
  | Set_idx of string * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Do of expr
  | Ret of expr

type elem = Word | Byte

type global =
  | Scalar of string * int
  | Array of string * elem * int
  | Array_init of string * elem * int array

type func = {
  name : string;
  params : string list;
  locals : string list;
  body : stmt list;
}

type program = { globals : global list; funcs : func list }

let global_name = function
  | Scalar (n, _) | Array (n, _, _) | Array_init (n, _, _) -> n

let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( % ) a b = Bin (Mod, a, b)
let ( &&& ) a b = Bin (And, a, b)
let ( ||| ) a b = Bin (Or, a, b)
let ( ^^^ ) a b = Bin (Xor, a, b)
let ( <<< ) a b = Bin (Shl, a, b)
let ( >>> ) a b = Bin (Shr, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Ne, a, b)
let i n = Int n
let v name = Var name
let idx name e = Idx (name, e)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="

let rec pp_expr ppf = function
  | Int n -> Fmt.int ppf n
  | Var x -> Fmt.string ppf x
  | Idx (a, e) -> Fmt.pf ppf "%s[%a]" a pp_expr e
  | Bin (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Un (Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | Un (Not, e) -> Fmt.pf ppf "(!%a)" pp_expr e
  | Un (Bitnot, e) -> Fmt.pf ppf "(~%a)" pp_expr e
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:comma pp_expr) args

let rec pp_stmt ppf = function
  | Set (x, e) -> Fmt.pf ppf "%s = %a;" x pp_expr e
  | Set_idx (a, e1, e2) -> Fmt.pf ppf "%s[%a] = %a;" a pp_expr e1 pp_expr e2
  | If (c, t, []) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_block t pp_block e
  | While (c, b) ->
      Fmt.pf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr c pp_block b
  | Do e -> Fmt.pf ppf "%a;" pp_expr e
  | Ret e -> Fmt.pf ppf "return %a;" pp_expr e

and pp_block ppf stmts = Fmt.(list ~sep:cut pp_stmt) ppf stmts

let pp_global ppf = function
  | Scalar (n, init) -> Fmt.pf ppf "int %s = %d;" n init
  | Array (n, Word, len) -> Fmt.pf ppf "int %s[%d];" n len
  | Array (n, Byte, len) -> Fmt.pf ppf "char %s[%d];" n len
  | Array_init (n, Word, a) -> Fmt.pf ppf "int %s[%d] = {...};" n (Array.length a)
  | Array_init (n, Byte, a) -> Fmt.pf ppf "char %s[%d] = {...};" n (Array.length a)

let pp_func ppf f =
  Fmt.pf ppf "@[<v 2>%s(%a) locals(%a) {@,%a@]@,}" f.name
    Fmt.(list ~sep:comma string)
    f.params
    Fmt.(list ~sep:comma string)
    f.locals pp_block f.body

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%a@,%a@]"
    Fmt.(list ~sep:cut pp_global)
    p.globals
    Fmt.(list ~sep:cut pp_func)
    p.funcs
