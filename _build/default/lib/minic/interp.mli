(** Reference interpreter.

    Defines minic's semantics independently of the code generator and
    processor simulator; differential tests check that compiled
    execution computes exactly the same result.  Array accesses are
    bounds-checked here (the hardware would silently read neighbouring
    memory), so a clean interpreter run certifies that a program is
    in-bounds and the compiled version is trustworthy. *)

exception Runtime_error of string

val run : ?fuel:int -> Ast.program -> int
(** Execute [main] and return its value (32-bit, in [0, 0xFFFFFFFF]).
    [fuel] bounds the number of statements executed (default 10^9).
    @raise Runtime_error on division by zero, out-of-bounds access,
    missing return paths falling through are fine (a function without
    [Ret] returns 0), call-stack overflow, or fuel exhaustion. *)
