(** Static checks for minic programs.

    Verifies name resolution, arities, and the structural restrictions
    the code generator relies on: at most 6 parameters and 8 locals,
    calls only in statement position with call-free arguments, and
    expression depth within the temporary-register budget. *)

val max_params : int
val max_locals : int
val max_expr_depth : int

val expr_depth : Ast.expr -> int
(** Number of expression-stack temporaries needed to evaluate. *)

val check : Ast.program -> (unit, string list) result
(** All violations, or [Ok ()]. *)

val check_exn : Ast.program -> unit
(** @raise Failure with the concatenated violations. *)
