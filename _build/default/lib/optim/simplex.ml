type rel = Le | Ge | Eq

type problem = {
  objective : float array;
  constraints : (float array * rel * float) list;
}

type outcome =
  | Optimal of { objective : float; x : float array }
  | Infeasible
  | Unbounded

(* Internal tableau:
     t.(i).(j), i = 0..m-1 constraint rows, j = 0..ncols-1 columns,
     rhs.(i) right-hand sides (kept nonnegative),
     basis.(i) = column basic in row i.
   Columns: structural variables, then slack/surplus, then artificial. *)
type tableau = {
  t : float array array;
  rhs : float array;
  basis : int array;
  m : int;
  ncols : int;
}

let pivot tb ~row ~col =
  let p = tb.t.(row).(col) in
  let trow = tb.t.(row) in
  for j = 0 to tb.ncols - 1 do
    trow.(j) <- trow.(j) /. p
  done;
  tb.rhs.(row) <- tb.rhs.(row) /. p;
  for i = 0 to tb.m - 1 do
    if i <> row then begin
      let f = tb.t.(i).(col) in
      if f <> 0.0 then begin
        let ti = tb.t.(i) in
        for j = 0 to tb.ncols - 1 do
          ti.(j) <- ti.(j) -. (f *. trow.(j))
        done;
        tb.rhs.(i) <- tb.rhs.(i) -. (f *. tb.rhs.(row))
      end
    end
  done;
  tb.basis.(row) <- col

(* Minimize cost.(j) over the tableau with Bland's rule; [allowed j]
   restricts entering columns.  Returns `Optimal or `Unbounded; [cost]
   is updated in place as the reduced-cost row. *)
let optimize ~eps tb cost cost_rhs allowed =
  let rec loop () =
    (* Bland: smallest-index column with negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to tb.ncols - 1 do
         if allowed j && cost.(j) < -.eps then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let col = !entering in
      (* Ratio test, Bland ties by smallest basis variable. *)
      let row = ref (-1) in
      let best = ref infinity in
      for i = 0 to tb.m - 1 do
        if tb.t.(i).(col) > eps then begin
          let r = tb.rhs.(i) /. tb.t.(i).(col) in
          if
            r < !best -. eps
            || (Float.abs (r -. !best) <= eps
               && (!row < 0 || tb.basis.(i) < tb.basis.(!row)))
          then begin
            best := r;
            row := i
          end
        end
      done;
      if !row < 0 then `Unbounded
      else begin
        let r = !row in
        (* Update the reduced-cost row alongside the tableau: after the
           pivot normalizes row r, subtract cost.(col) times it. *)
        let fc = cost.(col) in
        pivot tb ~row:r ~col;
        let frow = tb.t.(r) in
        if fc <> 0.0 then begin
          for j = 0 to tb.ncols - 1 do
            cost.(j) <- cost.(j) -. (fc *. frow.(j))
          done;
          cost_rhs := !cost_rhs -. (fc *. tb.rhs.(r))
        end;
        loop ()
      end
    end
  in
  loop ()

let solve ?(eps = 1e-9) { objective; constraints } =
  let n = Array.length objective in
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> n then
        invalid_arg "Simplex.solve: constraint row length mismatch")
    constraints;
  let cons = Array.of_list constraints in
  let m = Array.length cons in
  (* Flip rows to make rhs nonnegative. *)
  let cons =
    Array.map
      (fun (row, rel, b) ->
        if b < 0.0 then
          ( Array.map (fun v -> -.v) row,
            (match rel with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.b )
        else (Array.copy row, rel, b))
      cons
  in
  let nslack =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Le | Ge -> acc + 1 | Eq -> acc)
      0 cons
  in
  let nart =
    Array.fold_left
      (fun acc (_, rel, _) -> match rel with Ge | Eq -> acc + 1 | Le -> acc)
      0 cons
  in
  let ncols = n + nslack + nart in
  let tb =
    {
      t = Array.make_matrix m ncols 0.0;
      rhs = Array.make m 0.0;
      basis = Array.make m (-1);
      m;
      ncols;
    }
  in
  let art_start = n + nslack in
  let slack = ref n and art = ref art_start in
  Array.iteri
    (fun i (row, rel, b) ->
      Array.blit row 0 tb.t.(i) 0 n;
      tb.rhs.(i) <- b;
      (match rel with
      | Le ->
          tb.t.(i).(!slack) <- 1.0;
          tb.basis.(i) <- !slack;
          incr slack
      | Ge ->
          tb.t.(i).(!slack) <- -1.0;
          incr slack;
          tb.t.(i).(!art) <- 1.0;
          tb.basis.(i) <- !art;
          incr art
      | Eq ->
          tb.t.(i).(!art) <- 1.0;
          tb.basis.(i) <- !art;
          incr art))
    cons;
  (* Phase 1: minimize the sum of artificials. *)
  if nart > 0 then begin
    let cost = Array.make ncols 0.0 in
    for j = art_start to ncols - 1 do
      cost.(j) <- 1.0
    done;
    let cost_rhs = ref 0.0 in
    (* Price out basic artificials. *)
    for i = 0 to m - 1 do
      if tb.basis.(i) >= art_start then begin
        for j = 0 to ncols - 1 do
          cost.(j) <- cost.(j) -. tb.t.(i).(j)
        done;
        cost_rhs := !cost_rhs -. tb.rhs.(i)
      end
    done;
    match optimize ~eps tb cost cost_rhs (fun _ -> true) with
    | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
    | `Optimal ->
        if !cost_rhs < -.eps *. 100.0 then raise Exit
  end;
  (* Drive any remaining basic artificials out (degenerate rows). *)
  for i = 0 to m - 1 do
    if tb.basis.(i) >= art_start then begin
      let found = ref false in
      for j = 0 to art_start - 1 do
        if (not !found) && Float.abs tb.t.(i).(j) > eps then begin
          pivot tb ~row:i ~col:j;
          found := true
        end
      done
      (* If no pivot exists the row is all-zero: redundant, harmless. *)
    end
  done;
  (* Phase 2. *)
  let cost = Array.make ncols 0.0 in
  Array.blit objective 0 cost 0 n;
  let cost_rhs = ref 0.0 in
  for i = 0 to m - 1 do
    let b = tb.basis.(i) in
    if b >= 0 && b < art_start && Float.abs cost.(b) > 0.0 then begin
      let f = cost.(b) in
      for j = 0 to ncols - 1 do
        cost.(j) <- cost.(j) -. (f *. tb.t.(i).(j))
      done;
      cost_rhs := !cost_rhs -. (f *. tb.rhs.(i))
    end
  done;
  match optimize ~eps tb cost cost_rhs (fun j -> j < art_start) with
  | `Unbounded -> Unbounded
  | `Optimal ->
      let x = Array.make n 0.0 in
      for i = 0 to m - 1 do
        if tb.basis.(i) < n then x.(tb.basis.(i)) <- tb.rhs.(i)
      done;
      let objv = ref 0.0 in
      for j = 0 to n - 1 do
        objv := !objv +. (objective.(j) *. x.(j))
      done;
      Optimal { objective = !objv; x }

let solve ?eps p = try solve ?eps p with Exit -> Infeasible

let feasible ?(eps = 1e-6) p x =
  Array.for_all (fun v -> v >= -.eps) x
  && List.for_all
       (fun (row, rel, b) ->
         let lhs = ref 0.0 in
         Array.iteri (fun j a -> lhs := !lhs +. (a *. x.(j))) row;
         match rel with
         | Le -> !lhs <= b +. eps
         | Ge -> !lhs >= b -. eps
         | Eq -> Float.abs (!lhs -. b) <= eps)
       p.constraints
