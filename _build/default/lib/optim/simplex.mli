(** Dense two-phase primal simplex for linear programs in the form

    {v minimize c.x  subject to  A_i.x (<= | >= | =) b_i,  x >= 0 v}

    Bland's rule is used throughout, so the method cannot cycle.
    Intended for the modest problem sizes of design-space exploration
    (tens of variables and constraints); no sparsity or factorization
    tricks. *)

type rel = Le | Ge | Eq

type problem = {
  objective : float array;                  (** minimized *)
  constraints : (float array * rel * float) list;
}

type outcome =
  | Optimal of { objective : float; x : float array }
  | Infeasible
  | Unbounded

val solve : ?eps:float -> problem -> outcome
(** @raise Invalid_argument on ragged constraint rows. *)

val feasible : ?eps:float -> problem -> float array -> bool
(** Does a point satisfy all constraints and nonnegativity? *)
