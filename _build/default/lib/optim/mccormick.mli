(** McCormick linearization of SOS1 binary programs with product
    constraints — the paper's proposed "recast our nonlinear
    constraints" future work.

    Every product term [f1 * f2] (both factors linear in the binaries)
    is replaced by a fresh continuous variable [w] constrained by the
    four McCormick envelope cuts derived from SOS1-aware factor bounds
    [f1 in [L1,U1]], [f2 in [L2,U2]]:

    {v w >= L2 f1 + L1 f2 - L1 L2      w <= U2 f1 + L1 f2 - L1 U2
      w >= U2 f1 + U1 f2 - U1 U2      w <= L2 f1 + U1 f2 - L2 U1 v}

    The result is a 0-1 {e linear} program (solvable by {!Milp} with
    guaranteed global optimality) that {e relaxes} the original: the
    envelopes admit [w] values no binary assignment realizes, so the
    linearized optimum may violate the true nonlinear constraint —
    quantifying exactly what the paper's proposed recast would trade
    away.  (Negative-valued [w] ranges are handled by an internal
    shift, since {!Milp} variables are nonnegative.) *)

val linearize : Binlp.problem -> Milp.problem
(** Variables [0 .. nvars-1] are the original binaries; auxiliary
    (shifted) product variables follow. *)

val solve : ?node_limit:int -> Binlp.problem -> Binlp.solution option
(** Linearize, solve with {!Milp}, and return the binary part.  The
    solution is optimal for the relaxed model; check it against the
    original with {!Binlp.check}. *)
