type problem = {
  objective : float array;
  constraints : (float array * Simplex.rel * float) list;
  binary : bool array;
  upper : float array;
}

type solution = { x : float array; objective : float }

exception Node_limit

let last_nodes = ref 0
let stats_nodes () = !last_nodes

let validate (p : problem) =
  let n = Array.length p.objective in
  if Array.length p.binary <> n || Array.length p.upper <> n then
    invalid_arg "Milp.solve: array length mismatch";
  List.iter
    (fun (row, _, _) ->
      if Array.length row <> n then
        invalid_arg "Milp.solve: constraint row length mismatch")
    p.constraints;
  n

(* Fixings: per-variable optional forced value (from branching). *)
let relaxation (p : problem) (fixed : float option array) =
  let n = Array.length p.objective in
  let bound_rows = ref [] in
  for j = 0 to n - 1 do
    let unit = Array.init n (fun k -> if k = j then 1.0 else 0.0) in
    match fixed.(j) with
    | Some v -> bound_rows := (unit, Simplex.Eq, v) :: !bound_rows
    | None ->
        let ub = if p.binary.(j) then 1.0 else p.upper.(j) in
        if ub < infinity then bound_rows := (unit, Simplex.Le, ub) :: !bound_rows
  done;
  { Simplex.objective = p.objective; constraints = p.constraints @ !bound_rows }

let is_integral ~eps v = Float.abs (v -. Float.round v) <= eps

let solve ?(eps = 1e-7) ?(node_limit = 200_000) (p : problem) =
  let n = validate p in
  last_nodes := 0;
  let best = ref None in
  let best_obj = ref infinity in
  let rec node fixed =
    incr last_nodes;
    if !last_nodes > node_limit then raise Node_limit;
    match Simplex.solve (relaxation p fixed) with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        (* A bounded-binary problem can only be unbounded through the
           continuous variables; treat as a modeling error. *)
        invalid_arg "Milp.solve: relaxation unbounded (missing upper bounds?)"
    | Simplex.Optimal { objective; x } ->
        if objective >= !best_obj -. 1e-12 then ()
        else begin
          (* Most fractional binary variable. *)
          let branch_var = ref (-1) in
          let frac_dist = ref 0.0 in
          for j = 0 to n - 1 do
            if p.binary.(j) && fixed.(j) = None && not (is_integral ~eps x.(j))
            then begin
              let d = Float.abs (x.(j) -. Float.round x.(j)) in
              if d > !frac_dist then begin
                frac_dist := d;
                branch_var := j
              end
            end
          done;
          if !branch_var < 0 then begin
            (* Integral on all binaries: new incumbent. *)
            best_obj := objective;
            let xr =
              Array.mapi
                (fun j v -> if p.binary.(j) then Float.round v else v)
                x
            in
            best := Some { x = xr; objective }
          end
          else begin
            let j = !branch_var in
            (* Explore the side the relaxation leans toward first. *)
            let first, second = if x.(j) >= 0.5 then (1.0, 0.0) else (0.0, 1.0) in
            fixed.(j) <- Some first;
            node fixed;
            fixed.(j) <- Some second;
            node fixed;
            fixed.(j) <- None
          end
        end
  in
  node (Array.make n None);
  !best
