(** Exact branch-and-bound solver for SOS1-structured binary integer
    (non)linear programs — the role TOMLAB /MINLP plays in the paper.

    The problem shape is the paper's Section 4 formulation:

    - binary decision variables [x_0 .. x_{nvars-1}];
    - disjoint SOS1 groups: at most one variable of each group may be 1
      (variables in no group are free binaries);
    - a linear objective to minimize;
    - constraints that are sums of {e terms} compared to a bound, where
      each term is linear ([a.x + a0]) or a {e product} of two linear
      forms — the paper's cache-resource constraint
      [(1 + x1 + 2 x2 + 3 x3) * (sum lambda_i x_i) + ... <= L] needs one
      product term per cache plus linear remainder terms.

    The search enumerates one option per group (including "none"),
    pruning with an admissible objective bound and per-constraint
    interval bounds; leaves are checked exactly, so the returned
    solution is a true optimum. *)

type rel = Le | Ge

type lin = { coeffs : (int * float) list; const : float }
(** [a.x + const] with sparse coefficients. *)

type term = Lin of lin | Prod of lin * lin

type constr = { terms : term list; rel : rel; bound : float }

val linear : lin -> rel -> float -> constr
val product : lin -> lin -> rel -> float -> constr

type problem = {
  nvars : int;
  objective : float array;
  groups : int list list;   (** disjoint variable index lists *)
  constraints : constr list;
}

type solution = { x : bool array; objective : float }

exception Node_limit

val solve : ?node_limit:int -> problem -> solution option
(** Minimize; [None] if no assignment satisfies the constraints.
    @raise Node_limit if the search exceeds [node_limit] nodes
    (default 20 million — far beyond the paper's 52-variable model)
    @raise Invalid_argument on malformed input (overlapping groups,
    indices out of range). *)

val brute_force : problem -> solution option
(** Reference implementation enumerating every SOS1-respecting
    assignment; for testing on small instances. *)

val eval_lin : lin -> bool array -> float
val eval_constr_lhs : constr -> bool array -> float
val check : problem -> bool array -> bool
(** Do the SOS1 groups and all constraints hold at a point? *)
