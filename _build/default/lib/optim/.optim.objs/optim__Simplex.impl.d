lib/optim/simplex.ml: Array Float List
