lib/optim/milp.ml: Array Float List Simplex
