lib/optim/milp.mli: Simplex
