lib/optim/binlp.mli:
