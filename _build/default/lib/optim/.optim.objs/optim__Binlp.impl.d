lib/optim/binlp.ml: Array List
