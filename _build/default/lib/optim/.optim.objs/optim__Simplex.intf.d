lib/optim/simplex.mli:
