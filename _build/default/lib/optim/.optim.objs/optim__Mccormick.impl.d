lib/optim/mccormick.ml: Array Binlp List Milp Simplex
