lib/optim/mccormick.mli: Binlp Milp
