(** 0-1 mixed-integer linear programming by LP-relaxation branch and
    bound, built on {!Simplex}.

    This is the "convex recast" solving route the paper's conclusion
    proposes: once the nonlinear constraints are linearized (see
    {!Mccormick}), the problem becomes a mixed 0-1 {e linear} program
    whose relaxation is convex, and branch-and-bound with LP bounds is
    guaranteed to find the global optimum.

    Variables are continuous in [0, upper_j] unless marked binary (then
    branched to {0,1}).  Minimization only. *)

type problem = {
  objective : float array;
  constraints : (float array * Simplex.rel * float) list;
  binary : bool array;     (** same length as [objective] *)
  upper : float array;     (** upper bounds; [infinity] = unbounded *)
}

type solution = { x : float array; objective : float }

exception Node_limit

val solve : ?eps:float -> ?node_limit:int -> problem -> solution option
(** [None] when infeasible.
    @raise Node_limit beyond [node_limit] (default 200,000) nodes
    @raise Invalid_argument on ragged input. *)

val stats_nodes : unit -> int
(** Nodes explored by the most recent [solve] (for solver studies). *)
