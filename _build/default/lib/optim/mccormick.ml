(* SOS1-aware bounds of a linear form: within each group at most one
   variable is set, free binaries contribute independently. *)
let factor_bounds (p : Binlp.problem) (l : Binlp.lin) =
  let in_group = Array.make p.nvars false in
  List.iter (List.iter (fun j -> in_group.(j) <- true)) p.groups;
  let coeff j =
    List.fold_left
      (fun acc (k, a) -> if k = j then acc +. a else acc)
      0.0 l.Binlp.coeffs
  in
  let lo = ref l.Binlp.const and hi = ref l.Binlp.const in
  List.iter
    (fun g ->
      let contribs = 0.0 :: List.map coeff g in
      lo := !lo +. List.fold_left min infinity contribs;
      hi := !hi +. List.fold_left max neg_infinity contribs)
    p.groups;
  List.iter
    (fun (j, a) ->
      if not in_group.(j) then
        if a < 0.0 then lo := !lo +. a else hi := !hi +. a)
    l.Binlp.coeffs;
  (!lo, !hi)

type product = {
  w_index : int;        (* MILP variable index of the (shifted) w *)
  shift : float;        (* w_milp = w_true - shift, shift = lower bound *)
  f1 : Binlp.lin;
  f2 : Binlp.lin;
  b1 : float * float;
  b2 : float * float;
}

let collect_products (p : Binlp.problem) =
  let next = ref p.nvars in
  List.concat_map
    (fun (c : Binlp.constr) ->
      List.filter_map
        (function
          | Binlp.Lin _ -> None
          | Binlp.Prod (f1, f2) ->
              let b1 = factor_bounds p f1 and b2 = factor_bounds p f2 in
              let l1, u1 = b1 and l2, u2 = b2 in
              let products =
                [ l1 *. l2; l1 *. u2; u1 *. l2; u1 *. u2 ]
              in
              let shift = List.fold_left min infinity products in
              let w_index = !next in
              incr next;
              Some { w_index; shift; f1; f2; b1; b2 })
        c.Binlp.terms)
    p.constraints

let linearize (p : Binlp.problem) =
  let products = collect_products p in
  let naux = List.length products in
  let n = p.nvars + naux in
  let objective = Array.make n 0.0 in
  Array.blit p.objective 0 objective 0 p.nvars;
  let binary = Array.init n (fun j -> j < p.nvars) in
  let upper =
    Array.init n (fun j ->
        if j < p.nvars then 1.0
        else
          let prod = List.find (fun q -> q.w_index = j) products in
          let l1, u1 = prod.b1 and l2, u2 = prod.b2 in
          let hi =
            List.fold_left max neg_infinity
              [ l1 *. l2; l1 *. u2; u1 *. l2; u1 *. u2 ]
          in
          hi -. prod.shift)
  in
  let dense (l : Binlp.lin) =
    let row = Array.make n 0.0 in
    List.iter (fun (j, a) -> row.(j) <- row.(j) +. a) l.Binlp.coeffs;
    (row, l.Binlp.const)
  in
  (* SOS1 groups as linear rows. *)
  let group_rows =
    List.map
      (fun g ->
        let row = Array.make n 0.0 in
        List.iter (fun j -> row.(j) <- 1.0) g;
        (row, Simplex.Le, 1.0))
      p.groups
  in
  (* Original constraints with products replaced by their w. *)
  let product_queue = ref products in
  let constr_rows =
    List.map
      (fun (c : Binlp.constr) ->
        let row = Array.make n 0.0 in
        let const = ref 0.0 in
        List.iter
          (function
            | Binlp.Lin l ->
                let r, k = dense l in
                Array.iteri (fun j a -> row.(j) <- row.(j) +. a) r;
                const := !const +. k
            | Binlp.Prod _ ->
                (match !product_queue with
                | q :: rest ->
                    product_queue := rest;
                    row.(q.w_index) <- row.(q.w_index) +. 1.0;
                    const := !const +. q.shift
                | [] -> assert false))
          c.Binlp.terms;
        let rel =
          match c.Binlp.rel with Binlp.Le -> Simplex.Le | Binlp.Ge -> Simplex.Ge
        in
        (row, rel, c.Binlp.bound -. !const))
      p.constraints
  in
  (* McCormick envelope cuts per product:
       w_true (rel) alpha f1 + beta f2 - gamma, with w_true = w + shift. *)
  let cuts =
    List.concat_map
      (fun q ->
        let l1, u1 = q.b1 and l2, u2 = q.b2 in
        let cut rel alpha beta gamma =
          (* w + shift - alpha f1 - beta f2 >= / <= -gamma *)
          let row = Array.make n 0.0 in
          row.(q.w_index) <- 1.0;
          let add scale (l : Binlp.lin) =
            List.iter
              (fun (j, a) -> row.(j) <- row.(j) -. (scale *. a))
              l.Binlp.coeffs
          in
          add alpha q.f1;
          add beta q.f2;
          let rhs =
            -.gamma -. q.shift +. (alpha *. q.f1.Binlp.const)
            +. (beta *. q.f2.Binlp.const)
          in
          (row, rel, rhs)
        in
        [
          cut Simplex.Ge l2 l1 (l1 *. l2);
          cut Simplex.Ge u2 u1 (u1 *. u2);
          cut Simplex.Le u2 l1 (l1 *. u2);
          cut Simplex.Le l2 u1 (l2 *. u1);
        ])
      products
  in
  {
    Milp.objective;
    constraints = group_rows @ constr_rows @ cuts;
    binary;
    upper;
  }

let solve ?node_limit (p : Binlp.problem) =
  match Milp.solve ?node_limit (linearize p) with
  | None -> None
  | Some s ->
      let x = Array.init p.nvars (fun j -> s.Milp.x.(j) > 0.5) in
      let objective =
        Array.to_list (Array.mapi (fun j b -> if b then p.objective.(j) else 0.0) x)
        |> List.fold_left ( +. ) 0.0
      in
      Some { Binlp.x; objective }
