open Minic.Ast

let buffer_words = 4096 (* 16 KB input packet buffer *)
let out_words = 512 (* small output ring: headers + bounded payload *)
let header_words = 5
let mtu_payload_words = 64 (* 256-byte fragments *)
let copy_cap_words = 12

(* Each fragment occupies a fixed 32-word slot in the output ring, so
   slot-relative indices never cross the ring boundary. *)

(* Fill the input buffer with length-prefixed packet records:
   [payload_words; 5 header words; payload...]. *)
let gen_fn =
  {
    name = "gen";
    params = [];
    locals = [ "pos"; "seed"; "plen"; "k"; "count" ];
    body =
      [
        Set ("pos", i 0);
        Set ("seed", i 0xF4A6);
        Set ("count", i 0);
        While
          ( v "pos" + i 384 < i buffer_words,
            [
              Set ("seed", ((v "seed" * i 1103515245) + i 12345) &&& i 0x7FFFFFFF);
              Set ("plen", i 64 + ((v "seed" >>> i 7) &&& i 255));
              Set_idx ("pkts", v "pos", v "plen");
              Set ("k", i 0);
              While
                ( v "k" < v "plen" + i header_words,
                  [
                    Set_idx
                      ( "pkts",
                        v "pos" + i 1 + v "k",
                        (v "seed" ^^^ (v "k" * i 2654435761)) &&& i 0xFFFFFFFF );
                    Set ("k", v "k" + i 1);
                  ] );
              Set ("pos", v "pos" + i 1 + i header_words + v "plen");
              Set ("count", v "count" + i 1);
            ] );
        Set ("npackets", v "count");
        Ret (v "pos");
      ];
  }

(* 16-bit ones-complement checksum of the 5 header words at out[base]. *)
let cksum_fn =
  {
    name = "cksum";
    params = [ "base" ];
    locals = [ "s"; "k"; "w" ];
    body =
      [
        Set ("s", i 0);
        Set ("k", i 0);
        While
          ( v "k" < i header_words,
            [
              Set ("w", idx "out" (v "base" + v "k"));
              Set ("s", v "s" + (v "w" &&& i 0xFFFF) + (v "w" >>> i 16));
              Set ("k", v "k" + i 1);
            ] );
        Set ("s", (v "s" &&& i 0xFFFF) + (v "s" >>> i 16));
        Set ("s", (v "s" &&& i 0xFFFF) + (v "s" >>> i 16));
        Ret (v "s" ^^^ i 0xFFFF);
      ];
  }

(* Walk the packet records and emit fragments. *)
let frag_fn =
  {
    name = "fragment";
    params = [ "limit" ];
    locals = [ "pos"; "plen"; "off"; "fl"; "o"; "k"; "acc"; "c" ];
    body =
      [
        Set ("pos", i 0);
        Set ("o", i 0);
        Set ("acc", i 0);
        While
          ( v "pos" < v "limit",
            [
              Set ("plen", idx "pkts" (v "pos"));
              Set ("off", i 0);
              While
                ( v "off" < v "plen",
                  [
                    (* fragment payload length *)
                    Set ("fl", v "plen" - v "off");
                    If (v "fl" > i mtu_payload_words, [ Set ("fl", i mtu_payload_words) ], []);
                    (* copy and adjust the header into the output ring *)
                    Set ("k", i 0);
                    While
                      ( v "k" < i header_words,
                        [
                          Set_idx ("out", v "o" + v "k", idx "pkts" (v "pos" + i 1 + v "k"));
                          Set ("k", v "k" + i 1);
                        ] );
                    Set_idx ("out", v "o", (v "fl" <<< i 16) ||| (v "off" &&& i 0x1FFF));
                    If
                      ( v "off" + v "fl" < v "plen",
                        [ Set_idx ("out", v "o" + i 1, idx "out" (v "o" + i 1) ||| i 0x2000) ],
                        [] );
                    Set ("c", Call ("cksum", [ v "o" ]));
                    Set_idx ("out", v "o" + i 2, v "c");
                    Set ("acc", v "acc" + v "c");
                    (* bounded payload copy *)
                    Set ("k", i 0);
                    While
                      ( (v "k" < v "fl") &&& (v "k" < i copy_cap_words),
                        [
                          Set_idx
                            ( "out",
                              v "o" + i header_words + v "k",
                              idx "pkts" (v "pos" + i 1 + i header_words + v "off" + v "k") );
                          Set ("k", v "k" + i 1);
                        ] );
                    Set ("o", (v "o" + i 32) &&& i 511);
                    Set ("off", v "off" + v "fl");
                    Set ("nfrags", v "nfrags" + i 1);
                  ] );
              Set ("pos", v "pos" + i 1 + i header_words + v "plen");
            ] );
        Ret (v "acc");
      ];
  }

let main_fn =
  {
    name = "main";
    params = [];
    locals = [ "limit"; "acc" ];
    body =
      [
        Set ("limit", Call ("gen", []));
        Set ("acc", Call ("fragment", [ v "limit" ]));
        Ret (v "acc" + (v "nfrags" <<< i 16) + (v "npackets" <<< i 26));
      ];
  }

let program =
  {
    globals =
      [
        Array ("pkts", Word, buffer_words);
        Array ("out", Word, out_words);
        Scalar ("npackets", 0);
        Scalar ("nfrags", 0);
      ];
    funcs = [ gen_fn; cksum_fn; frag_fn; main_fn ];
  }
