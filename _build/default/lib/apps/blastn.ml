open Minic.Ast

let db_len = 24576
let query_len = 128
let table_words = 256 (* byte-indexed 8-bit hash table *)
let db_bytes = db_len
let table_bytes = 256
let refine_probes = 6000

(* h = ((w * 40503) >> 7) & 255: multiplicative hash of the 16-bit
   packed 8-mer window into the byte table. *)
let hash w = Bin (And, Bin (Shr, Bin (Mul, w, i 40503), i 7), i 255)

(* Ungapped forward extension: count matching bases from (qp, dp). *)
let extend_fn =
  {
    name = "extend";
    params = [ "qp"; "dp" ];
    locals = [ "n"; "go" ];
    body =
      [
        Set ("n", i 0);
        Set ("go", i 1);
        While
          ( v "go" &&& (v "qp" + v "n" < i query_len)
            &&& (v "dp" + v "n" < i db_len),
            [
              If
                ( idx "query" (v "qp" + v "n") = idx "db" (v "dp" + v "n"),
                  [ Set ("n", v "n" + i 1) ],
                  [ Set ("go", i 0) ] );
            ] );
        Ret (v "n");
      ];
  }

(* Build the 8-mer table over the query; positions are stored +1 so
   zero means empty (they fit a byte: the query is 128 bases). *)
let build_fn =
  {
    name = "build";
    params = [];
    locals = [ "k"; "w"; "h" ];
    body =
      [
        Set ("k", i 0);
        Set ("w", i 0);
        While
          ( v "k" < i query_len,
            [
              Set ("w", (v "w" <<< i 2 ||| idx "query" (v "k")) &&& i 0xFFFF);
              If
                ( v "k" >= i 7,
                  [ Set ("h", hash (v "w")); Set_idx ("htab", v "h", v "k" - i 6) ],
                  [] );
              Set ("k", v "k" + i 1);
            ] );
        Ret (i 0);
      ];
  }

(* Scan the database, probing the table at every position. *)
let scan_fn =
  {
    name = "scan";
    params = [];
    locals = [ "k"; "w"; "h"; "p"; "s"; "score"; "hits" ];
    body =
      [
        Set ("k", i 0);
        Set ("w", i 0);
        Set ("score", i 0);
        Set ("hits", i 0);
        While
          ( v "k" < i db_len,
            [
              Set ("w", (v "w" <<< i 2 ||| idx "db" (v "k")) &&& i 0xFFFF);
              If
                ( v "k" >= i 7,
                  [
                    Set ("h", hash (v "w"));
                    Set ("p", idx "htab" (v "h"));
                    If
                      ( v "p" > i 0,
                        [
                          Set ("s", Call ("extend", [ v "p" - i 1; v "k" - i 7 ]));
                          Set ("score", v "score" + v "s");
                          Set ("hits", v "hits" + i 1);
                        ],
                        [] );
                  ],
                  [] );
              Set ("k", v "k" + i 1);
            ] );
        Ret (v "score" + (v "hits" <<< i 12));
      ];
  }

(* Hit refinement: re-examine scattered database neighbourhoods (the
   two-hit / neighbourhood re-scoring pass of BLAST).  The probe
   positions are derived from an LCG, sweeping the whole database
   non-sequentially -- cache-resident only once the full 24 KB fits. *)
let refine_fn =
  {
    name = "refine";
    params = [];
    locals = [ "j"; "seed"; "pos"; "s" ];
    body =
      [
        Set ("j", i 0);
        Set ("seed", i 0xB1A5);
        Set ("s", i 0);
        While
          ( v "j" < i refine_probes,
            [
              Set ("seed", ((v "seed" * i 1103515245) + i 12345) &&& i 0x7FFFFFFF);
              Set ("pos", (v "seed" >>> i 8) &&& i 0x7FFF);
              If
                ( v "pos" < i 24574,
                  [
                    Set ("s", v "s" + idx "db" (v "pos") + (idx "db" (v "pos" + i 1) <<< i 2));
                  ],
                  [] );
              Set ("j", v "j" + i 1);
            ] );
        Ret (v "s");
      ];
  }

let main_fn =
  {
    name = "main";
    params = [];
    locals = [ "r"; "f" ];
    body =
      [
        Do (Call ("build", []));
        Set ("r", Call ("scan", []));
        Set ("f", Call ("refine", []));
        Ret (v "r" + v "f");
      ];
  }

let program =
  {
    globals =
      [
        Array_init ("db", Byte, Workload.dna ~seed:0xB1A57 ~len:db_len);
        Array_init ("query", Byte, Workload.dna ~seed:0x0DEA ~len:query_len);
        Array ("htab", Byte, table_words);
      ];
    funcs = [ extend_fn; build_fn; scan_fn; refine_fn; main_fn ];
  }
