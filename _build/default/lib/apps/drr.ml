let queue_count = 256
let slots_per_queue = 16
let packets = 3072
let quantum = 400

let log2 n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  go 0

let is_pow2 n = n > 0 && n land (n - 1) = 0

open Minic.Ast

(* The full benchmark, parameterized: the paper's Benchmark II is the
   instance at the bottom; the scheduler-tuning domain
   (Dse.Sched_tuning) explores other geometries and quanta through the
   same generator.  [queues] and [slots] must be powers of two. *)
let make_program ?(raw_total = false) ~queues ~slots ~quantum ~packets () =
  if not (is_pow2 queues) then
    invalid_arg "Drr.make_program: queues must be a power of two";
  if not (is_pow2 slots) then
    invalid_arg "Drr.make_program: slots must be a power of two";
  let slot_shift = log2 slots in
  let slot_mask = Stdlib.( - ) slots 1 in
  let qmask = Stdlib.( - ) queues 1 in
  (* Enqueue a synthetic trace: queue and length from the LCG state. *)
  let enqueue_fn =
    {
      name = "enqueue";
      params = [];
      locals = [ "n"; "seed"; "q"; "len"; "t"; "accepted" ];
      body =
        [
          Set ("n", i 0);
          Set ("seed", i 0x5EED);
          Set ("accepted", i 0);
          While
            ( v "n" < i packets,
              [
                Set ("seed", ((v "seed" * i 1103515245) + i 12345) &&& i 0x7FFFFFFF);
                Set ("q", (v "seed" >>> i 16) &&& i qmask);
                Set ("len", i 64 + ((v "seed" >>> i 6) &&& i 1023));
                Set ("t", idx "qtail" (v "q"));
                If
                  ( ((v "t" + i 1) &&& i slot_mask) <> idx "qhead" (v "q"),
                    [
                      Set_idx ("qbuf", (v "q" <<< i slot_shift) + v "t", v "len");
                      Set_idx ("qtail", v "q", (v "t" + i 1) &&& i slot_mask);
                      Set ("accepted", v "accepted" + i 1);
                    ],
                    [] );
                Set ("n", v "n" + i 1);
              ] );
          Ret (v "accepted");
        ];
    }
  in
  (* Serve all enqueued packets in DRR order. *)
  let serve_fn =
    {
      name = "serve";
      params = [ "remaining" ];
      locals = [ "q"; "h"; "len"; "total"; "d" ];
      body =
        [
          Set ("total", i 0);
          While
            ( v "remaining" > i 0,
              [
                Set ("q", i 0);
                While
                  ( v "q" < i queues,
                    [
                      Set ("h", idx "qhead" (v "q"));
                      If
                        ( v "h" <> idx "qtail" (v "q"),
                          [
                            Set ("d", idx "deficit" (v "q") + i quantum);
                            Set ("len", idx "qbuf" ((v "q" <<< i slot_shift) + v "h"));
                            While
                              ( (v "h" <> idx "qtail" (v "q")) &&& (v "len" <= v "d"),
                                [
                                  Set ("d", v "d" - v "len");
                                  Set ("total", v "total" + v "len");
                                  Set ("h", (v "h" + i 1) &&& i slot_mask);
                                  Set ("remaining", v "remaining" - i 1);
                                  If
                                    ( v "h" <> idx "qtail" (v "q"),
                                      [ Set ("len", idx "qbuf" ((v "q" <<< i slot_shift) + v "h")) ],
                                      [] );
                                ] );
                            Set_idx ("qhead", v "q", v "h");
                            If
                              ( v "h" = idx "qtail" (v "q"),
                                [ Set_idx ("deficit", v "q", i 0) ],
                                [ Set_idx ("deficit", v "q", v "d") ] );
                          ],
                          [] );
                      Set ("q", v "q" + i 1);
                    ] );
              ] );
          Ret (v "total");
        ];
    }
  in
  let main_fn =
    {
      name = "main";
      params = [];
      locals = [ "accepted"; "total" ];
      body =
        [
          Set ("accepted", Call ("enqueue", []));
          Set ("total", Call ("serve", [ v "accepted" ]));
          (if raw_total then Ret (v "total")
           else Ret (v "total" + (v "accepted" <<< i 20)));
        ];
    }
  in
  {
    globals =
      [
        Array ("qbuf", Word, Stdlib.( * ) queues slots);
        Array ("qhead", Word, queues);
        Array ("qtail", Word, queues);
        Array ("deficit", Word, queues);
      ];
    funcs = [ enqueue_fn; serve_fn; main_fn ];
  }

let program =
  make_program ~queues:queue_count ~slots:slots_per_queue ~quantum ~packets ()
