(** Benchmark IV — BYTE Arith.

    Tight register-resident loop of additions, multiplications and
    divisions, historically used to test processor arithmetic speed.
    No array traffic at all, so the data cache is irrelevant (the
    paper: "no effect, as application is not data intensive") while
    the multiplier and divider latencies dominate. *)

val program : Minic.Ast.program
val iterations : int
