let lcg_next x = ((x * 1103515245) + 12345) land 0x7FFFFFFF

let lcg_stream ~seed ~len =
  let x = ref (seed land 0x7FFFFFFF) in
  Array.init len (fun _ ->
      x := lcg_next !x;
      !x)

let dna ~seed ~len =
  let s = lcg_stream ~seed ~len in
  Array.map (fun x -> (x lsr 13) land 3) s
