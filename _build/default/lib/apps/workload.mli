(** Deterministic synthetic workload data.

    The paper runs its benchmarks on real inputs (DNA sequences, packet
    traces); those inputs are not available, so we generate seeded
    synthetic equivalents with the same access signature.  Everything
    is a pure function of the seed, keeping simulated runtimes a pure
    function of the configuration. *)

val dna : seed:int -> len:int -> int array
(** Bases encoded 0..3, suitable for a [Byte] minic array. *)

val lcg_stream : seed:int -> len:int -> int array
(** Successive states of the 31-bit [x <- (1103515245 x + 12345) mod
    2^31] generator — the same recurrence the benchmarks use
    internally, exposed for building expected values in tests. *)

val lcg_next : int -> int
(** One step of that recurrence. *)
