(** Benchmark II — CommBench DRR (deficit round robin scheduling).

    256 packet queues with per-queue deficit counters are filled from a
    synthetic trace generated in-program (the LCG multiply mirrors the
    trace handling of the original benchmark) and then served in
    deficit-round-robin order with a small quantum, so a packet's queue
    head is revisited over several rounds.  Each round walks all queue
    heads — a working set of ~20 KB that is re-used round after round,
    giving the strong data-cache sensitivity the paper measures for
    DRR. *)

val program : Minic.Ast.program
(** The paper's Benchmark II instance: 256 queues x 16 slots,
    quantum 400, 3072 packets. *)

val make_program :
  ?raw_total:bool ->
  queues:int ->
  slots:int ->
  quantum:int ->
  packets:int ->
  unit ->
  Minic.Ast.program
(** Parameterized generator behind {!program}; [queues] and [slots]
    must be powers of two.  With [raw_total] the checksum is just the
    serviced byte count (used by the scheduler-tuning domain to compute
    cycles per serviced byte).
    @raise Invalid_argument on non-power-of-two geometry. *)

val queue_count : int
val slots_per_queue : int
