lib/apps/frag.mli: Minic
