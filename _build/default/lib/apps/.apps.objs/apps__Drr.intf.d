lib/apps/drr.mli: Minic
