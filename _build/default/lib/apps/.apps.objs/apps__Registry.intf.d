lib/apps/registry.mli: Arch Isa Lazy Minic Sim
