lib/apps/arith.mli: Minic
