lib/apps/drr.ml: Minic Stdlib
