lib/apps/workload.ml: Array
