lib/apps/arith.ml: Minic
