lib/apps/extra.ml: Float Minic Printf Registry
