lib/apps/extra.mli: Registry
