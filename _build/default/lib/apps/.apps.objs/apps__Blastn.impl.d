lib/apps/blastn.ml: Minic Workload
