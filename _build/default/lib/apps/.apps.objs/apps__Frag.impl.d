lib/apps/frag.ml: Minic
