lib/apps/registry.ml: Arch Arith Blastn Drr Frag Isa Lazy List Minic Sim String
