lib/apps/workload.mli:
