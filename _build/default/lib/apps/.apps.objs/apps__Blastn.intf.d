lib/apps/blastn.mli: Minic
