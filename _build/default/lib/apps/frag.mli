(** Benchmark III — CommBench FRAG (IP packet fragmentation).

    A synthetic stream of IP packets (length-prefixed records in a
    16 KB buffer, generated in-program) is split into MTU-sized
    fragments; each fragment gets a copied and adjusted header (more-
    fragments flag, offset, length) with a freshly computed 16-bit
    ones-complement checksum, plus a bounded payload copy into a small
    output ring.  Computation-intensive with a streaming read pattern,
    so data-cache gains are modest — as the paper finds. *)

val program : Minic.Ast.program
val buffer_words : int
