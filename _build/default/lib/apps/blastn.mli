(** Benchmark I — BLASTN (Basic Local Alignment Search Tool,
    nucleotide variant).

    Word-matching DNA search, as in the paper: an 8-mer hash table is
    built from the query, the database is scanned with a rolling packed
    window (table hits trigger ungapped extension), and hit
    neighbourhoods are then re-examined in a scattered refinement pass.
    Computation- and memory-access-intensive: the 24 KB database is
    touched both streaming and scattered, so the data cache saturates
    only once the whole database fits (32 KB) — the paper's Figure 2
    plateau. *)

val program : Minic.Ast.program
val db_bytes : int
val table_bytes : int
