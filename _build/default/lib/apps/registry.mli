(** The benchmark registry: one entry per paper benchmark.

    [reps] scales one steady-state epoch up to the paper's wall-clock
    runtimes (Section 2.5: BLASTN 10.6 s, DRR 5 min, FRAG 2.5 min,
    Arith 32 s on the default configuration at 25 MHz); see
    {!Sim.Machine.run} for the cold + (reps-1) x warm model. *)

type t = {
  name : string;
  description : string;
  source : Minic.Ast.program;
  program : Isa.Program.t Lazy.t;  (** compiled once, on demand *)
  reps : int;
  paper_base_seconds : float;      (** the paper's measured default runtime *)
}

val blastn : t
val drr : t
val frag : t
val arith : t

val all : t list
(** In the paper's order: BLASTN, DRR, FRAG, Arith. *)

val find : string -> t
(** Case-insensitive lookup. @raise Not_found *)

val run : ?config:Arch.Config.t -> t -> Sim.Machine.result
(** Execute on the simulator with the app's [reps] scaling. *)

val seconds : ?config:Arch.Config.t -> t -> float
(** Scaled runtime in seconds at the nominal clock. *)

val interp_checksum : t -> int
(** Reference-interpreter checksum (also validates in-bounds safety). *)
