open Minic.Ast

let iterations = 12000

let main_fn =
  {
    name = "main";
    params = [];
    locals = [ "s"; "k"; "t"; "u" ];
    body =
      [
        Set ("s", i 0x1234);
        Set ("k", i 1);
        While
          ( v "k" <= i iterations,
            [
              Set ("t", (v "k" * i 40503) &&& i 0xFFFFF);
              Set ("u", v "t" / ((v "k" &&& i 255) + i 1));
              Set ("s", v "s" + v "t" + v "u" + (v "s" <<< i 1));
              Set ("k", v "k" + i 1);
            ] );
        Ret (v "s");
      ];
  }

let program = { globals = []; funcs = [ main_fn ] }
