type t = {
  name : string;
  description : string;
  source : Minic.Ast.program;
  program : Isa.Program.t Lazy.t;
  reps : int;
  paper_base_seconds : float;
}

let make name description source reps paper_base_seconds =
  {
    name;
    description;
    source;
    program = lazy (Minic.Codegen.compile source);
    reps;
    paper_base_seconds;
  }

let blastn =
  make "blastn" "BLASTN DNA word-matching search (Benchmark I)" Blastn.program
    94 10.6

let drr =
  make "drr" "CommBench deficit round robin scheduler (Benchmark II)"
    Drr.program 7960 297.98

let frag =
  make "frag" "CommBench IP fragmentation (Benchmark III)" Frag.program 20544
    150.75

let arith =
  make "arith" "BYTE arithmetic loop (Benchmark IV)" Arith.program 935 32.33

let all = [ blastn; drr; frag; arith ]

let find name =
  let name = String.lowercase_ascii name in
  match List.find_opt (fun t -> t.name = name) all with
  | Some t -> t
  | None -> raise Not_found

let run ?(config = Arch.Config.base) t =
  Sim.Machine.run ~reps:t.reps config (Lazy.force t.program)

let seconds ?config t = Sim.Machine.seconds (run ?config t)
let interp_checksum t = Minic.Interp.run ~fuel:2_000_000_000 t.source
