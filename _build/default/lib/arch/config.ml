type replacement = Random | Lrr | Lru

type multiplier =
  | Mul_none
  | Mul_iterative
  | Mul_16x16
  | Mul_16x16_pipe
  | Mul_32x8
  | Mul_32x16
  | Mul_32x32

type divider = Div_radix2 | Div_none

type cache = {
  ways : int;
  way_kb : int;
  line_words : int;
  replacement : replacement;
}

type iu = {
  fast_jump : bool;
  icc_hold : bool;
  fast_decode : bool;
  load_delay : int;
  reg_windows : int;
  divider : divider;
  multiplier : multiplier;
}

type t = {
  icache : cache;
  dcache : cache;
  dcache_fast_read : bool;
  dcache_fast_write : bool;
  iu : iu;
  infer_mult_div : bool;
}

let base_cache = { ways = 1; way_kb = 4; line_words = 8; replacement = Random }

let base =
  {
    icache = base_cache;
    dcache = base_cache;
    dcache_fast_read = false;
    dcache_fast_write = false;
    iu =
      {
        fast_jump = true;
        icc_hold = true;
        fast_decode = true;
        load_delay = 1;
        reg_windows = 8;
        divider = Div_radix2;
        multiplier = Mul_16x16;
      };
    infer_mult_div = true;
  }

let valid_way_kbs = [ 1; 2; 4; 8; 16; 32; 64 ]
let valid_ways = [ 1; 2; 3; 4 ]
let valid_line_words = [ 4; 8 ]
let valid_reg_windows = 8 :: List.init 17 (fun i -> 16 + i)

let validate_cache which c =
  let err fmt = Format.kasprintf (fun s -> Error (which ^ ": " ^ s)) fmt in
  if not (List.mem c.ways valid_ways) then err "ways %d not in 1..4" c.ways
  else if not (List.mem c.way_kb valid_way_kbs) then
    err "way size %d KB not in {1,2,4,8,16,32,64}" c.way_kb
  else if not (List.mem c.line_words valid_line_words) then
    err "line size %d words not in {4,8}" c.line_words
  else
    match c.replacement with
    | Lrr when c.ways <> 2 -> err "LRR replacement requires 2-way associativity"
    | Lru when c.ways < 2 -> err "LRU replacement requires multi-way associativity"
    | Random | Lrr | Lru -> Ok ()

let validate t =
  let ( let* ) = Result.bind in
  let* () = validate_cache "icache" t.icache in
  let* () = validate_cache "dcache" t.dcache in
  if not (List.mem t.iu.load_delay [ 1; 2 ]) then
    Error (Printf.sprintf "load delay %d not in {1,2}" t.iu.load_delay)
  else if not (List.mem t.iu.reg_windows valid_reg_windows) then
    Error (Printf.sprintf "register windows %d not in {8,16..32}" t.iu.reg_windows)
  else Ok ()

let is_valid t = Result.is_ok (validate t)
let equal (a : t) (b : t) = a = b

let replacement_to_string = function
  | Random -> "rnd"
  | Lrr -> "LRR"
  | Lru -> "LRU"

let multiplier_to_string = function
  | Mul_none -> "none"
  | Mul_iterative -> "iterative"
  | Mul_16x16 -> "m16x16"
  | Mul_16x16_pipe -> "m16x16+pipe"
  | Mul_32x8 -> "m32x8"
  | Mul_32x16 -> "m32x16"
  | Mul_32x32 -> "m32x32"

let divider_to_string = function Div_radix2 -> "radix2" | Div_none -> "none"

let pp_cache ppf c =
  Fmt.pf ppf "%dx%dKB/line%d/%s" c.ways c.way_kb c.line_words
    (replacement_to_string c.replacement)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>icache %a@,\
     dcache %a fr=%b fw=%b@,\
     iu fj=%b icc=%b fd=%b ld=%d win=%d div=%s mul=%s@,\
     infer=%b@]"
    pp_cache t.icache pp_cache t.dcache t.dcache_fast_read t.dcache_fast_write
    t.iu.fast_jump t.iu.icc_hold t.iu.fast_decode t.iu.load_delay
    t.iu.reg_windows
    (divider_to_string t.iu.divider)
    (multiplier_to_string t.iu.multiplier)
    t.infer_mult_div
