type group =
  | Icache_ways
  | Icache_way_kb
  | Icache_line
  | Icache_repl
  | Dcache_ways
  | Dcache_way_kb
  | Dcache_line
  | Dcache_repl
  | Fast_jump
  | Icc_hold
  | Fast_decode
  | Load_delay
  | Fast_read
  | Divider
  | Infer_mult_div
  | Reg_windows
  | Multiplier
  | Fast_write

type var = {
  index : int;
  group : group;
  label : string;
  apply : Config.t -> Config.t;
}

let set_icache c f = { c with Config.icache = f c.Config.icache }
let set_dcache c f = { c with Config.dcache = f c.Config.dcache }
let set_iu c f = { c with Config.iu = f c.Config.iu }

let icache_ways n c = set_icache c (fun i -> { i with Config.ways = n })
let icache_kb n c = set_icache c (fun i -> { i with Config.way_kb = n })
let icache_line n c = set_icache c (fun i -> { i with Config.line_words = n })
let icache_repl r c = set_icache c (fun i -> { i with Config.replacement = r })
let dcache_ways n c = set_dcache c (fun d -> { d with Config.ways = n })
let dcache_kb n c = set_dcache c (fun d -> { d with Config.way_kb = n })
let dcache_line n c = set_dcache c (fun d -> { d with Config.line_words = n })
let dcache_repl r c = set_dcache c (fun d -> { d with Config.replacement = r })

(* The perturbation list mirrors the paper's x1..x52 numbering exactly;
   see the interface documentation. *)
let specs : (group * string * (Config.t -> Config.t)) list =
  [
    (Icache_ways, "icachesets2", icache_ways 2);
    (Icache_ways, "icachesets3", icache_ways 3);
    (Icache_ways, "icachesets4", icache_ways 4);
    (Icache_way_kb, "icachesetsz1", icache_kb 1);
    (Icache_way_kb, "icachesetsz2", icache_kb 2);
    (Icache_way_kb, "icachesetsz8", icache_kb 8);
    (Icache_way_kb, "icachesetsz16", icache_kb 16);
    (Icache_way_kb, "icachesetsz32", icache_kb 32);
    (Icache_line, "icachelinesz4", icache_line 4);
    (Icache_repl, "icacheLRR", icache_repl Config.Lrr);
    (Icache_repl, "icacheLRU", icache_repl Config.Lru);
    (Dcache_ways, "dcachesets2", dcache_ways 2);
    (Dcache_ways, "dcachesets3", dcache_ways 3);
    (Dcache_ways, "dcachesets4", dcache_ways 4);
    (Dcache_way_kb, "dcachesetsz1", dcache_kb 1);
    (Dcache_way_kb, "dcachesetsz2", dcache_kb 2);
    (Dcache_way_kb, "dcachesetsz8", dcache_kb 8);
    (Dcache_way_kb, "dcachesetsz16", dcache_kb 16);
    (Dcache_way_kb, "dcachesetsz32", dcache_kb 32);
    (Dcache_line, "dcachelinesz4", dcache_line 4);
    (Dcache_repl, "dcacheLRR", dcache_repl Config.Lrr);
    (Dcache_repl, "dcacheLRU", dcache_repl Config.Lru);
    ( Fast_jump,
      "nofastjump",
      fun c -> set_iu c (fun u -> { u with Config.fast_jump = false }) );
    ( Icc_hold,
      "noicchold",
      fun c -> set_iu c (fun u -> { u with Config.icc_hold = false }) );
    ( Fast_decode,
      "nofastdecode",
      fun c -> set_iu c (fun u -> { u with Config.fast_decode = false }) );
    ( Load_delay,
      "loaddelay2",
      fun c -> set_iu c (fun u -> { u with Config.load_delay = 2 }) );
    ( Fast_read,
      "dcachefastread",
      fun c -> { c with Config.dcache_fast_read = true } );
    ( Divider,
      "nodivider",
      fun c -> set_iu c (fun u -> { u with Config.divider = Config.Div_none })
    );
    ( Infer_mult_div,
      "noinfermuldiv",
      fun c -> { c with Config.infer_mult_div = false } );
  ]
  @ List.init 17 (fun i ->
        let w = 16 + i in
        ( Reg_windows,
          Printf.sprintf "regwindows%d" w,
          fun c -> set_iu c (fun u -> { u with Config.reg_windows = w }) ))
  @ (let mult m name =
       ( Multiplier,
         "multiplier" ^ name,
         fun c -> set_iu c (fun u -> { u with Config.multiplier = m }) )
     in
     [
       mult Config.Mul_iterative "iter";
       mult Config.Mul_16x16_pipe "m16x16pipe";
       mult Config.Mul_32x8 "m32x8";
       mult Config.Mul_32x16 "m32x16";
       mult Config.Mul_32x32 "m32x32";
     ])
  @ [
      ( Fast_write,
        "dcachefastwrite",
        fun c -> { c with Config.dcache_fast_write = true } );
    ]

let all =
  List.mapi
    (fun i (group, label, apply) -> { index = i + 1; group; label; apply })
    specs

let count = List.length all
let table = Array.of_list all

let var i =
  if i < 1 || i > count then
    invalid_arg (Printf.sprintf "Param.var: index %d not in 1..%d" i count)
  else table.(i - 1)

let groups =
  [
    Icache_ways;
    Icache_way_kb;
    Icache_line;
    Icache_repl;
    Dcache_ways;
    Dcache_way_kb;
    Dcache_line;
    Dcache_repl;
    Fast_jump;
    Icc_hold;
    Fast_decode;
    Load_delay;
    Fast_read;
    Divider;
    Infer_mult_div;
    Reg_windows;
    Multiplier;
    Fast_write;
  ]

let group_members g = List.filter (fun v -> v.group = g) all

let group_to_string = function
  | Icache_ways -> "icache ways"
  | Icache_way_kb -> "icache way size"
  | Icache_line -> "icache line size"
  | Icache_repl -> "icache replacement"
  | Dcache_ways -> "dcache ways"
  | Dcache_way_kb -> "dcache way size"
  | Dcache_line -> "dcache line size"
  | Dcache_repl -> "dcache replacement"
  | Fast_jump -> "fast jump"
  | Icc_hold -> "ICC hold"
  | Fast_decode -> "fast decode"
  | Load_delay -> "load delay"
  | Fast_read -> "dcache fast read"
  | Divider -> "divider"
  | Infer_mult_div -> "infer mult/div"
  | Reg_windows -> "register windows"
  | Multiplier -> "multiplier"
  | Fast_write -> "dcache fast write"

let apply_all config vars =
  List.fold_left (fun c v -> v.apply c) config vars

let dcache_size_dims = [ Dcache_ways; Dcache_way_kb ]
