(** LEON2 microarchitecture configurations (paper Figure 1).

    A configuration fixes every reconfigurable parameter the paper
    customizes: instruction and data caches, integer-unit options, and
    the synthesis option.  Terminology follows LEON: a cache has 1-4
    "sets" (ways, i.e. associativity), each way holding [way_kb]
    kilobytes with lines of 4 or 8 words. *)

type replacement = Random | Lrr | Lru

type multiplier =
  | Mul_none       (** software multiplication routine *)
  | Mul_iterative  (** iterative shift-and-add unit *)
  | Mul_16x16      (** 16x16 array multiplier (default) *)
  | Mul_16x16_pipe (** 16x16 with pipeline registers *)
  | Mul_32x8
  | Mul_32x16
  | Mul_32x32

type divider = Div_radix2 | Div_none

type cache = {
  ways : int;         (** associativity, 1..4 (LEON "sets") *)
  way_kb : int;       (** size of each way in KB: 1,2,4,8,16,32,64 *)
  line_words : int;   (** 4 or 8 32-bit words per line *)
  replacement : replacement;
}

type iu = {
  fast_jump : bool;
  icc_hold : bool;
  fast_decode : bool;
  load_delay : int;   (** 1 or 2 clock cycles *)
  reg_windows : int;  (** 8 or 16..32 *)
  divider : divider;
  multiplier : multiplier;
}

type t = {
  icache : cache;
  dcache : cache;
  dcache_fast_read : bool;
  dcache_fast_write : bool;
  iu : iu;
  infer_mult_div : bool;
}

val base : t
(** The default out-of-the-box LEON configuration the paper starts
    from: 1-way 4 KB caches with 8-word lines and random replacement,
    fast read/write disabled, fast jump / ICC hold / fast decode
    enabled, load delay 1, 8 register windows, radix-2 divider, 16x16
    multiplier, mult/div inference on. *)

val valid_way_kbs : int list
val valid_ways : int list
val valid_line_words : int list
val valid_reg_windows : int list

val validate : t -> (unit, string) result
(** Checks LEON's structural rules: parameter ranges, LRR only with
    2-way associativity, LRU only with multi-way associativity. *)

val is_valid : t -> bool

val equal : t -> t -> bool
val pp : t Fmt.t
val pp_cache : cache Fmt.t
val replacement_to_string : replacement -> string
val multiplier_to_string : multiplier -> string
val divider_to_string : divider -> string
