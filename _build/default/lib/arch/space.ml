(* Parameter-value accounting for the Figure 1 table.  Each entry is
   (parameter name, number of values including the default). *)
let value_counts =
  [
    ("icache ways", 4);
    ("icache way size", 7);
    ("icache line size", 2);
    ("icache replacement", 3);
    ("dcache ways", 4);
    ("dcache way size", 7);
    ("dcache line size", 2);
    ("dcache replacement", 3);
    ("dcache fast read", 2);
    ("dcache fast write", 2);
    ("fast jump", 2);
    ("ICC hold", 2);
    ("fast decode", 2);
    ("load delay", 2);
    ("register windows", 18);
    ("divider", 2);
    ("multiplier", 7);
    ("infer mult/div", 2);
  ]

let parameter_value_count = List.fold_left (fun a (_, n) -> a + n) 0 value_counts
let one_at_a_time_count = Param.count

let exhaustive_count = List.fold_left (fun a (_, n) -> a * n) 1 value_counts

let exhaustive_valid_count =
  (* Only replacement x associativity interacts structurally: random is
     always valid, LRR needs exactly 2 ways, LRU needs >= 2 ways.  The
     valid (ways, replacement) pairs therefore number 4 + 1 + 3 = 8 per
     cache instead of 4 * 3 = 12. *)
  let valid_ways_repl = 8 and all_ways_repl = 12 in
  exhaustive_count / (all_ways_repl * all_ways_repl)
  * (valid_ways_repl * valid_ways_repl)

let perturbations () =
  List.map (fun v -> (v, v.Param.apply Config.base)) Param.all

let dcache_geometry () =
  List.concat_map
    (fun ways ->
      List.map
        (fun kb ->
          { Config.base with dcache = { Config.base.dcache with ways; way_kb = kb } })
        Config.valid_way_kbs)
    Config.valid_ways

let subspace groups =
  let options_of_group g =
    (fun c -> c) :: List.map (fun v -> v.Param.apply) (Param.group_members g)
  in
  let configs =
    List.fold_left
      (fun acc g ->
        List.concat_map
          (fun c -> List.map (fun f -> f c) (options_of_group g))
          acc)
      [ Config.base ] groups
  in
  List.filter Config.is_valid configs

(* The paper's Section 5 accounting: dcache parameter value counts of
   4, 7, 4, 2, 3, 2 and 2 (the third "4" is associativity, which the
   paper counts separately from the number of sets). *)
let dcache_exhaustive_full_count = 4 * 7 * 4 * 2 * 3 * 2 * 2
