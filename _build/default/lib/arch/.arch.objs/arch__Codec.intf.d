lib/arch/codec.mli: Config
