lib/arch/space.ml: Config List Param
