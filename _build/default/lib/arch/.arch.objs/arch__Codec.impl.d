lib/arch/codec.ml: Config List Printf Result String
