lib/arch/config.ml: Fmt Format List Printf Result
