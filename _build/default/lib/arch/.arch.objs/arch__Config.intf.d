lib/arch/config.mli: Fmt
