lib/arch/space.mli: Config Param
