lib/arch/param.ml: Array Config List Printf
