lib/arch/param.mli: Config
