(** The 52 binary decision variables of the paper's Section 4.

    Each variable [x_i] (1-based, matching the paper's numbering)
    stands for one single-parameter perturbation of the base
    configuration.  Selecting a set of variables applies all the
    corresponding perturbations simultaneously.

    Numbering (from Section 4 of the paper):
    - x1..x3    icache ways 2,3,4
    - x4..x8    icache way size 1,2,8,16,32 KB
    - x9        icache line size 4 words
    - x10,x11   icache replacement LRR, LRU
    - x12..x14  dcache ways 2,3,4
    - x15..x19  dcache way size 1,2,8,16,32 KB
    - x20       dcache line size 4 words
    - x21,x22   dcache replacement LRR, LRU
    - x23       fast jump disabled
    - x24       ICC hold disabled
    - x25       fast decode disabled
    - x26       load delay 2
    - x27       dcache fast read enabled
    - x28       divider none
    - x29       infer mult/div false
    - x30..x46  register windows 16..32
    - x47..x51  multiplier iterative, 16x16+pipe, 32x8, 32x16, 32x32
    - x52       dcache fast write enabled *)

type group =
  | Icache_ways
  | Icache_way_kb
  | Icache_line
  | Icache_repl
  | Dcache_ways
  | Dcache_way_kb
  | Dcache_line
  | Dcache_repl
  | Fast_jump
  | Icc_hold
  | Fast_decode
  | Load_delay
  | Fast_read
  | Divider
  | Infer_mult_div
  | Reg_windows
  | Multiplier
  | Fast_write

type var = {
  index : int;  (** 1..52, the paper's x_i subscript *)
  group : group;
  label : string;  (** e.g. ["dcachesetsz32"] *)
  apply : Config.t -> Config.t;
}

val count : int
(** 52. *)

val all : var list
(** All variables in index order, [index] running 1..[count]. *)

val var : int -> var
(** [var i] is the variable with 1-based index [i].
    @raise Invalid_argument if [i] is out of range. *)

val groups : group list
(** All groups in declaration order. *)

val group_members : group -> var list
(** Variables belonging to a group, in index order.  Groups with more
    than one member carry an at-most-one (SOS1) constraint in the
    paper's formulation. *)

val group_to_string : group -> string

val apply_all : Config.t -> var list -> Config.t
(** Apply several perturbations to a configuration.  The variables are
    assumed to respect the SOS1 constraints (at most one per group);
    later perturbations of the same field would otherwise win. *)

val dcache_size_dims : group list
(** The two groups used for the paper's Section 5 scaled-down study:
    dcache ways and dcache way size. *)
