(** Design-space arithmetic and enumeration.

    The paper contrasts the exhaustive configuration space (billions of
    points) with the linear one-at-a-time space (52 points) its
    optimizer actually measures. *)

val parameter_value_count : int
(** Total number of parameter values across all parameters of
    Figure 1, counting every value including defaults. *)

val one_at_a_time_count : int
(** Number of single-perturbation configurations, i.e. 52: the number
    of non-default parameter values the optimizer measures. *)

val exhaustive_count : int
(** Cardinality of the full cross product of all parameter values
    (validity constraints not applied), the quantity the paper reports
    as infeasible to enumerate. *)

val exhaustive_valid_count : int
(** Cross-product cardinality counting only structurally valid
    replacement/associativity combinations. *)

val perturbations : unit -> (Param.var * Config.t) list
(** The 52 one-at-a-time configurations: each paper variable paired
    with the base configuration after applying just that variable. *)

val dcache_geometry : unit -> Config.t list
(** The Section 5 scaled-down exhaustive subspace: all 28 combinations
    of dcache ways (1-4) and way size (1..64 KB excluded at 64), other
    parameters at base.  Structural validity is guaranteed; FPGA
    feasibility is for the synthesis model to judge. *)

val subspace : Param.group list -> Config.t list
(** Exhaustive cross product over the given parameter groups, other
    parameters at base.  Each group contributes its base value plus
    every perturbed value; structurally invalid combinations are
    dropped. *)

val dcache_exhaustive_full_count : int
(** The paper's 2,688: exhaustive combinations of all seven dcache
    parameters (ways, way size incl. 64 KB, line size, replacement,
    fast read, fast write, and associativity counted as in the paper's
    Section 5 parameter list). *)
