lib/synth/netlist.ml: Arch Costs Fmt List Printf Resource String
