lib/synth/costs.mli: Arch
