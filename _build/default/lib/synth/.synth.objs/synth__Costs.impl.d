lib/synth/costs.ml: Arch Device
