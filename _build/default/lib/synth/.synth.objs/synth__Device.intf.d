lib/synth/device.mli:
