lib/synth/estimate.mli: Arch Resource
