lib/synth/resource.mli: Fmt
