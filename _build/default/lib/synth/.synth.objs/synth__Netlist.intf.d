lib/synth/netlist.mli: Arch Fmt Resource
