lib/synth/resource.ml: Device Fmt List
