lib/synth/device.ml:
