lib/synth/estimate.ml: Arch Costs Resource
