type t =
  | Leaf of { name : string; luts : int; brams : int }
  | Group of { name : string; children : t list }

let lut name luts = Leaf { name; luts; brams = 0 }
let bram name brams = Leaf { name; luts = 0; brams }

(* The fixed integer-unit core, decomposed along LEON2's entities.  The
   split is modeled (the paper reports only totals); the sum equals
   Costs.core_luts and the calibration tests pin the total. *)
let core_components =
  [
    lut "fetch_stage" 2180;
    lut "decode_stage" 1930;
    lut "execute_stage" 2860;
    lut "exception_unit" 1410;
    lut "ahb_interface" 1180;
    lut "memory_controller" 596;
  ]

let () = assert (
  List.fold_left
    (fun acc c -> match c with Leaf { luts; _ } -> acc + luts | Group _ -> acc)
    0 core_components
  = Costs.core_luts)

let cache_component which (c : Arch.Config.cache) extra =
  let way k =
    Group
      {
        name = Printf.sprintf "way%d" k;
        children =
          [
            bram "data_ram" (Costs.cache_way_data_brams ~way_kb:c.way_kb);
            bram "tag_ram"
              (Costs.cache_way_tag_brams ~way_kb:c.way_kb
                 ~line_words:c.line_words);
            lut "tag_compare_and_mux" Costs.cache_way_luts;
          ];
      }
  in
  let replacement =
    match c.replacement with
    | Arch.Config.Random -> []
    | Arch.Config.Lrr -> [ lut "lrr_counters" Costs.lrr_luts ]
    | Arch.Config.Lru -> [ lut "lru_state" Costs.lru_luts ]
  in
  Group
    {
      name = which;
      children =
        [
          lut "controller" Costs.cache_ctrl_luts;
          lut "index_datapath" (Costs.cache_kb_luts * c.way_kb);
        ]
        @ (if c.line_words = 8 then [ lut "wide_fill_datapath" Costs.cache_line8_luts ]
           else [])
        @ replacement
        @ List.init c.ways way
        @ extra;
    }

let elaborate (config : Arch.Config.t) =
  (match Arch.Config.validate config with
  | Ok () -> ()
  | Error m -> invalid_arg ("Netlist.elaborate: " ^ m));
  let iu = config.Arch.Config.iu in
  let opt cond c = if cond then [ c ] else [] in
  let integer_unit =
    Group
      {
        name = "integer_unit";
        children =
          core_components
          @ [
              Leaf
                {
                  name = "register_file";
                  luts = Costs.regfile_luts_per_window * iu.reg_windows;
                  brams = 0;
                };
              lut "multiplier" (Costs.multiplier_luts iu.multiplier);
              lut "divider" (Costs.divider_luts iu.divider);
            ]
          @ opt iu.fast_jump (lut "fast_jump_path" Costs.fast_jump_luts)
          @ opt iu.icc_hold (lut "icc_hold_logic" Costs.icc_hold_luts)
          @ opt iu.fast_decode (lut "fast_decode_path" Costs.fast_decode_luts)
          @ opt (iu.load_delay = 1) (lut "load_forwarding" Costs.load_delay1_luts)
          @ opt (not config.infer_mult_div)
              (lut "structural_macros" Costs.no_infer_luts);
      }
  in
  let dcache_extra =
    opt config.dcache_fast_read (lut "fast_read_path" Costs.fast_read_luts)
    @ opt config.dcache_fast_write (lut "fast_write_path" Costs.fast_write_luts)
  in
  Group
    {
      name = "leon2";
      children =
        [
          integer_unit;
          cache_component "icache" config.icache [];
          cache_component "dcache" config.dcache dcache_extra;
          bram "boot_and_buffers" Costs.core_brams;
        ];
    }

let rec resources = function
  | Leaf { luts; brams; _ } -> { Resource.luts; brams }
  | Group { children; _ } ->
      Resource.sum (List.map resources children)

let rec find t name =
  match t with
  | Leaf { name = n; _ } when n = name -> Some t
  | Leaf _ -> None
  | Group { name = n; _ } when n = name -> Some t
  | Group { children; _ } -> List.find_map (fun c -> find c name) children

let pp ppf t =
  let rec go indent t =
    let pad = String.make indent ' ' in
    match t with
    | Leaf { name; luts; brams } ->
        Fmt.pf ppf "%s%-28s %6d LUT %4d BRAM@." pad name luts brams
    | Group { name; children } ->
        let r = resources t in
        Fmt.pf ppf "%s%-28s %6d LUT %4d BRAM@." pad (name ^ "/")
          r.Resource.luts r.Resource.brams;
        List.iter (go (indent + 2)) children
  in
  go 0 t
