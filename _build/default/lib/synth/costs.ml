let core_luts = 10156
let regfile_luts_per_window = 32

let divider_luts = function
  | Arch.Config.Div_radix2 -> 500
  | Arch.Config.Div_none -> 0

let multiplier_luts = function
  | Arch.Config.Mul_none -> 0
  | Arch.Config.Mul_iterative -> 800
  | Arch.Config.Mul_16x16 -> 1500
  | Arch.Config.Mul_16x16_pipe -> 1580
  | Arch.Config.Mul_32x8 -> 1700
  | Arch.Config.Mul_32x16 -> 1820
  | Arch.Config.Mul_32x32 -> 1920

let fast_jump_luts = 250
let icc_hold_luts = 16
let fast_decode_luts = 90
let load_delay1_luts = 60
let no_infer_luts = 50
let fast_read_luts = 120
let fast_write_luts = 100
let cache_ctrl_luts = 700
let cache_way_luts = 90
let cache_kb_luts = 8
let cache_line8_luts = 260
let lrr_luts = 60
let lru_luts = 120
let core_brams = 64

let ceil_div a b = (a + b - 1) / b
let cache_way_data_brams ~way_kb = 2 * way_kb

let cache_way_tag_brams ~way_kb ~line_words =
  let lines = way_kb * 1024 / (line_words * 4) in
  ceil_div (lines * 32) Device.bram_bits
