(** Calibrated per-component FPGA cost constants, shared by the
    closed-form estimator ({!Estimate}) and the structural elaborator
    ({!Netlist}); the test suite checks the two agree on every
    configuration.  Calibration rationale lives in DESIGN.md. *)

val core_luts : int
val regfile_luts_per_window : int
val divider_luts : Arch.Config.divider -> int
val multiplier_luts : Arch.Config.multiplier -> int
val fast_jump_luts : int
val icc_hold_luts : int
val fast_decode_luts : int
val load_delay1_luts : int
val no_infer_luts : int
val fast_read_luts : int
val fast_write_luts : int
val cache_ctrl_luts : int
val cache_way_luts : int
val cache_kb_luts : int
val cache_line8_luts : int
val lrr_luts : int
val lru_luts : int
val core_brams : int

val cache_way_data_brams : way_kb:int -> int
val cache_way_tag_brams : way_kb:int -> line_words:int -> int
