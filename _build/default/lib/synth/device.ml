let luts = 38_400
let brams = 160
let bram_bits = 4096
