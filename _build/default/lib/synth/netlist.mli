(** Structural elaboration: a configuration becomes a hierarchy of
    named components with primitive LUT/BRAM costs, the shape of a
    synthesis tool's utilization report.

    This is a second, independently-structured implementation of the
    resource model: {!Estimate} computes closed-form totals, the
    netlist computes the same totals by summing a component tree.  The
    test suite checks both agree on every configuration, and the tree
    gives users the per-component breakdown the paper's authors read
    off their ISE reports. *)

type t =
  | Leaf of { name : string; luts : int; brams : int }
  | Group of { name : string; children : t list }

val elaborate : Arch.Config.t -> t
(** @raise Invalid_argument on structurally invalid configurations. *)

val resources : t -> Resource.t
(** Sum of all leaves. *)

val find : t -> string -> t option
(** First component with the given name, depth-first. *)

val pp : t Fmt.t
(** Indented utilization report with per-group subtotals. *)
