(** The target FPGA: Xilinx Virtex XCV2000E, as in the paper. *)

val luts : int
(** Total lookup tables: 38,400. *)

val brams : int
(** Total block RAMs (4 Kbit each): 160. *)

val bram_bits : int
(** Capacity of one block RAM in bits: 4096. *)
