(* Closed-form resource totals from the shared calibrated constants
   (see Costs and DESIGN.md).  Netlist computes the same totals
   structurally; tests check the two agree on every configuration. *)

let cache_way_brams ~way_kb ~line_words =
  Costs.cache_way_data_brams ~way_kb
  + Costs.cache_way_tag_brams ~way_kb ~line_words

let cache (c : Arch.Config.cache) =
  let luts =
    Costs.cache_ctrl_luts
    + (Costs.cache_way_luts * c.ways)
    + (Costs.cache_kb_luts * c.way_kb)
    + (if c.line_words = 8 then Costs.cache_line8_luts else 0)
    + (match c.replacement with
      | Arch.Config.Random -> 0
      | Arch.Config.Lrr -> Costs.lrr_luts
      | Arch.Config.Lru -> Costs.lru_luts)
  in
  let brams =
    c.ways * cache_way_brams ~way_kb:c.way_kb ~line_words:c.line_words
  in
  { Resource.luts; brams }

let config (t : Arch.Config.t) =
  (match Arch.Config.validate t with
  | Ok () -> ()
  | Error m -> invalid_arg ("Estimate.config: " ^ m));
  let iu = t.Arch.Config.iu in
  let iu_luts =
    Costs.core_luts
    + (Costs.regfile_luts_per_window * iu.reg_windows)
    + Costs.divider_luts iu.divider
    + Costs.multiplier_luts iu.multiplier
    + (if iu.fast_jump then Costs.fast_jump_luts else 0)
    + (if iu.icc_hold then Costs.icc_hold_luts else 0)
    + (if iu.fast_decode then Costs.fast_decode_luts else 0)
    + (if iu.load_delay = 1 then Costs.load_delay1_luts else 0)
    + (if t.infer_mult_div then 0 else Costs.no_infer_luts)
    + (if t.dcache_fast_read then Costs.fast_read_luts else 0)
    + (if t.dcache_fast_write then Costs.fast_write_luts else 0)
  in
  Resource.sum
    [
      { Resource.luts = iu_luts; brams = Costs.core_brams };
      cache t.icache;
      cache t.dcache;
    ]

let base = config Arch.Config.base

let feasible t =
  Arch.Config.is_valid t && Resource.fits (config t)
