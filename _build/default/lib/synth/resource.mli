(** FPGA resource reports and the paper's percentage normalization.

    The paper unifies LUTs and BRAM — quantities of very different
    magnitude — by expressing each as a percentage of the device
    capacity and adding them.  Percentages in the paper's tables are
    truncated integers; {!lut_percent_int} etc. reproduce that, while
    the [float] variants keep full precision for the optimizer. *)

type t = { luts : int; brams : int }

val zero : t
val add : t -> t -> t
val sum : t list -> t

val lut_percent : t -> float
val bram_percent : t -> float
val lut_percent_int : t -> int
(** Truncated percentage, as printed in the paper's figures. *)

val bram_percent_int : t -> int

val chip_cost : t -> float
(** Unified chip-resource cost: LUT%% + BRAM%%. *)

val fits : t -> bool
(** Does the configuration fit on the device? *)

val pp : t Fmt.t
