type t = { luts : int; brams : int }

let zero = { luts = 0; brams = 0 }
let add a b = { luts = a.luts + b.luts; brams = a.brams + b.brams }
let sum = List.fold_left add zero
let lut_percent r = 100.0 *. float_of_int r.luts /. float_of_int Device.luts
let bram_percent r = 100.0 *. float_of_int r.brams /. float_of_int Device.brams
let lut_percent_int r = r.luts * 100 / Device.luts
let bram_percent_int r = r.brams * 100 / Device.brams
let chip_cost r = lut_percent r +. bram_percent r
let fits r = r.luts <= Device.luts && r.brams <= Device.brams

let pp ppf r =
  Fmt.pf ppf "%d LUTs (%d%%), %d BRAM (%d%%)" r.luts (lut_percent_int r)
    r.brams (bram_percent_int r)
