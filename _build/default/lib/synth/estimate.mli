(** Analytic FPGA synthesis model for LEON2 on the XCV2000E.

    Replaces the paper's 30-minute Xilinx ISE builds with a
    component-wise cost model calibrated against every synthesis datum
    the paper publishes:

    - the default configuration costs 14,992 LUTs (39 %) and
      82 BRAM (51 %), exactly as reported;
    - the BRAM cost of a cache way is [2 blocks/KB] of data plus
      [ceil(lines * 32 / 4096)] blocks of tag store, which reproduces
      all 19 BRAM%% rows of the paper's Figure 2 under truncated
      percentages;
    - a 64 KB way exceeds the device (the paper's "33 % more BRAM than
      available"), making such configurations infeasible;
    - LUT deltas for the integer-unit options sit inside the 38-40 %%
      band the paper's figures show (Figure 6: removing the divider
      gives 37 %%, the 32x32 multiplier 40 %%, disabling fast jump
      38 %%).

    Dcache fast read/write shorten LEON's combinational read/write
    paths; at a fixed clock they change area only, which is why the
    paper's optimizer never selects them. *)

val cache : Arch.Config.cache -> Resource.t
(** Cost of one cache (data + tag BRAM, control LUTs). *)

val cache_way_brams : way_kb:int -> line_words:int -> int
(** BRAM blocks of a single way: the calibrated 2/KB + tag formula. *)

val config : Arch.Config.t -> Resource.t
(** Full-processor cost.
    @raise Invalid_argument on structurally invalid configurations. *)

val base : Resource.t
(** [config Arch.Config.base]: 14,992 LUTs, 82 BRAM. *)

val feasible : Arch.Config.t -> bool
(** Structurally valid and fits on the device. *)
