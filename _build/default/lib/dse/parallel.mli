(** Order-preserving parallel map over OCaml 5 domains.

    Model building dominates the pipeline's cost (52 independent
    simulator runs per application); the measurements share no mutable
    state, so they fan out across domains.  Callers must make sure any
    lazily compiled program is forced before mapping (OCaml's [Lazy]
    is not domain-safe). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [jobs] defaults to {!Domain.recommended_domain_count}, capped by
    the list length; [jobs <= 1] degrades to [List.map].  A worker
    exception is re-raised in the caller after all domains join. *)
