(** Reference values transcribed from the paper's figures, used to
    print side-by-side comparisons and to check reproduction shape in
    tests.  Runtimes are seconds on the paper's 25 MHz LEON testbed;
    LUT/BRAM are the paper's truncated device percentages. *)

type dcache_row = {
  ways : int;
  way_kb : int;
  seconds : float;
  lut_pct : int;
  bram_pct : int;
}

val figure2 : dcache_row list
(** BLASTN exhaustive dcache geometry (19 feasible rows). *)

val figure2_optimal : dcache_row
(** The paper's runtime-optimal pick: 2 x 16 KB, 10.22 s. *)

val figure3_selected : int * int
(** The optimizer's dcache pick for BLASTN (ways, way_kb) = (1, 32). *)

val figure4 : (string * (int * int) * float) list
(** Per app: optimizer dcache pick and its runtime — DRR (2,16) at
    261.609 s, FRAG (2,16) at 147.869 s; Arith unaffected. *)

type opt_summary = {
  app : string;
  base_seconds : float;
  predicted_seconds : float;
  actual_seconds : float;
  actual_lut_pct : int;
  actual_bram_pct : int;
  params : (string * string) list;
      (** reconfigured parameter -> chosen value, as printed *)
}

val figure5 : opt_summary list
(** Application runtime optimization (w1=100, w2=1). *)

val figure6 : (string * float * int * int) list
(** BLASTN one-at-a-time costs: label, seconds, LUT%%, BRAM%%. *)

val figure7 : opt_summary list
(** Chip resource optimization (w1=1, w2=100). *)

val runtime_gain_range : float * float
(** Section 6.1: 6.15%% - 19.39%% runtime decrease across the apps. *)
