type config = { queues : int; slots : int; quantum : int }

let base = { queues = 256; slots = 16; quantum = 400 }
let packets = 3072

(* qbuf + head/tail/deficit words per queue. *)
let state_bytes c = 4 * ((c.queues * c.slots) + (3 * c.queues))

(* Service efficiency: cycles per serviced kilobyte.  Using raw cycles
   would reward dropping traffic (an undersized queue array serves
   fewer bytes in fewer cycles); the ratio penalizes drops because the
   enqueue work for a dropped packet is wasted. *)
let cycles_per_kb c =
  let program =
    Minic.Codegen.compile
      (Apps.Drr.make_program ~raw_total:true ~queues:c.queues ~slots:c.slots
         ~quantum:c.quantum ~packets ())
  in
  let cpu = Sim.Cpu.create Arch.Config.base program ~mem_size:(1 lsl 20) in
  Sim.Cpu.run cpu;
  let served_bytes = Sim.Cpu.result cpu in
  if served_bytes = 0 then infinity
  else
    float_of_int (Sim.Cpu.profile cpu).Sim.Profiler.cycles
    /. (float_of_int served_bytes /. 1024.0)

let measure c = [| cycles_per_kb c; float_of_int (state_bytes c) |]

module Domain = struct
  type nonrec config = config

  let name = "drr-scheduler-tuning"
  let base = base
  let dimension_names = [| "cycles/KB served"; "state bytes" |]
  let measure = measure
  let feasible c = c.queues > 0 && c.slots > 0 && c.quantum > 0

  type group = {
    label : string;
    options : (string * (config -> config)) list;
  }

  let groups =
    [
      {
        label = "queues";
        options =
          List.map
            (fun q -> (string_of_int q, fun c -> { c with queues = q }))
            [ 64; 128; 512 ];
      };
      {
        label = "slots";
        options =
          List.map
            (fun s -> (string_of_int s, fun c -> { c with slots = s }))
            [ 8; 32; 64 ];
      };
      {
        label = "quantum";
        options =
          List.map
            (fun q -> (string_of_int q, fun c -> { c with quantum = q }))
            [ 100; 200; 800; 1600 ];
      };
    ]

  (* The appliance grants the scheduler at most 12 KB of state. *)
  let budgets = [| (1, 12288.0) |]
end

module Tuner = Generic.Make (Domain)

let print_outcome ppf (o : Tuner.outcome) =
  Format.fprintf ppf "  base: %.1f cycles/KB, %.0f state bytes@."
    o.base_costs.(0) o.base_costs.(1);
  Format.fprintf ppf "  selected: %s@."
    (if o.selected = [] then "(keep the base values)"
     else
       String.concat ", "
         (List.map (fun (g, v) -> g ^ "=" ^ v) o.selected));
  Format.fprintf ppf "  config: %d queues x %d slots, quantum %d@."
    o.config.queues o.config.slots o.config.quantum;
  Format.fprintf ppf "  predicted: cycles/KB %+.2f%%, bytes %+.2f%%@."
    o.predicted.(0) o.predicted.(1);
  Format.fprintf ppf "  actual:    cycles/KB %+.2f%%, bytes %+.2f%%@."
    o.actual.(0) o.actual.(1)
