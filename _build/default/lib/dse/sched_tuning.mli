(** A second instantiation of the paper's technique ({!Generic}) on a
    different configuration-management problem: tuning the DRR
    scheduler's {e software} parameters — queue count, slots per queue
    and the service quantum — for a memory-constrained appliance.

    Costs are measured the same way the paper measures the processor:
    the parameterized scheduler ({!Apps.Drr.make_program}) is compiled
    and executed on the simulated base processor.  Dimensions:

    - {b cycles per serviced kilobyte}: scheduling efficiency (plain
      cycles would reward dropping traffic);
    - {b state bytes}: queue buffers plus per-queue bookkeeping.

    A byte budget caps the state (the appliance's scratch memory). *)

type config = { queues : int; slots : int; quantum : int }

val base : config
(** The paper benchmark's geometry: 256 x 16, quantum 400. *)

val state_bytes : config -> int
val measure : config -> float array

module Domain : Generic.DOMAIN with type config = config
module Tuner : module type of Generic.Make (Domain)

val print_outcome : Format.formatter -> Tuner.outcome -> unit
