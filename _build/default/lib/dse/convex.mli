(** The paper's proposed "convex recast" of the nonlinear constraints,
    evaluated end to end.

    The Section 4 BINLP is linearized with McCormick envelopes and
    solved by LP-relaxation branch and bound ({!Optim.Mccormick},
    {!Optim.Milp}); the result is compared against the exact
    combinatorial solution on the same measured model.  Because the
    envelopes relax the cache resource products, the recast model may
    select configurations whose true BRAM use differs from what the
    linear model believed — this study quantifies that. *)

type study = {
  exact : Optimizer.outcome;
  recast_selected : Arch.Param.var list;
  recast_config : Arch.Config.t;
  recast_actual : Cost.t;
  agrees : bool;                (** same variable selection? *)
  recast_respects_truth : bool; (** true nonlinear constraints hold? *)
  exact_nodes_hint : string;
  milp_nodes : int;
}

val run : weights:Cost.weights -> Measure.model -> study
val print : Format.formatter -> study -> unit
