type prediction = {
  seconds : float;
  lut_percent : float;
  lut_percent_alt : float;
  bram_percent : float;
  bram_percent_alt : float;
}

type outcome = {
  model : Measure.model;
  weights : Cost.weights;
  solution : Optim.Binlp.solution;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  predicted : prediction;
  actual : Cost.t;
}

let predict ?variant model selected =
  let variant =
    match variant with None -> Formulate.paper_variant | Some v -> v
  in
  let d = Formulate.predicted_deltas ~variant model selected in
  let alt =
    Formulate.predicted_deltas
      ~variant:
        {
          Formulate.lut_nonlinear = not variant.Formulate.lut_nonlinear;
          bram_linear = not variant.Formulate.bram_linear;
        }
      model selected
  in
  let base = model.Measure.base in
  {
    seconds = base.Cost.seconds *. (1.0 +. (d.Cost.rho /. 100.0));
    lut_percent =
      Synth.Resource.lut_percent base.Cost.resources +. d.Cost.lambda;
    lut_percent_alt =
      Synth.Resource.lut_percent base.Cost.resources +. alt.Cost.lambda;
    bram_percent =
      Synth.Resource.bram_percent base.Cost.resources +. d.Cost.beta;
    bram_percent_alt =
      Synth.Resource.bram_percent base.Cost.resources +. alt.Cost.beta;
  }

let run_with_model ?variant ~weights model =
  let problem = Formulate.make ?variant weights model in
  match Optim.Binlp.solve problem with
  | None -> failwith "Optimizer: BINLP infeasible"
  | Some solution ->
      let selected = Formulate.vars_of_solution model solution in
      let config = Arch.Param.apply_all Arch.Config.base selected in
      (match Arch.Config.validate config with
      | Ok () -> ()
      | Error m -> failwith ("Optimizer: decoded configuration invalid: " ^ m));
      let actual = Measure.measure model.Measure.app config in
      {
        model;
        weights;
        solution;
        selected;
        config;
        predicted = predict ?variant model selected;
        actual;
      }

let run ?noise ?dims ?variant ~weights app =
  run_with_model ?variant ~weights (Measure.build ?noise ?dims app)

let pp_selected ppf vars =
  Fmt.(list ~sep:comma string)
    ppf
    (List.map (fun (v : Arch.Param.var) -> v.Arch.Param.label) vars)
