(** Experiment drivers and table renderers for every figure in the
    paper's evaluation (see DESIGN.md's per-experiment index).

    Each [run_figN] executes our full pipeline (simulator + resource
    model + optimizer) and returns structured results; each
    [print_figN] renders them next to the paper's published values. *)

val print_fig1 : Format.formatter -> unit
(** The reconfigurable-parameter table and design-space cardinalities. *)

type fig2 = {
  points : Exhaustive.point list;   (** 28 geometry points, Figure 2 order *)
  optimal : Exhaustive.point;       (** runtime-optimal feasible point *)
}

val run_fig2 : Apps.Registry.t -> fig2
val print_fig2 : Format.formatter -> fig2 -> unit

type fig3 = {
  model : Measure.model;            (** dcache-dims one-at-a-time model *)
  outcome : Optimizer.outcome;      (** w1=100, w2=0 pick *)
}

val run_fig3 : Apps.Registry.t -> fig3
val print_fig3 : Format.formatter -> fig3 -> unit

type fig4_row = {
  app : Apps.Registry.t;
  exhaustive_best : Exhaustive.point option;  (** None: no dcache effect *)
  optimizer_pick : Optimizer.outcome;
}

val run_fig4 : unit -> fig4_row list
(** DRR, FRAG and Arith (BLASTN being Figures 2/3). *)

val print_fig4 : Format.formatter -> fig4_row list -> unit

val run_fig5 : unit -> Optimizer.outcome list
(** Full-space runtime optimization (w1=100, w2=1), all four apps. *)

val print_fig5 : Format.formatter -> Optimizer.outcome list -> unit

val run_fig6 : Measure.model -> (Measure.row * (string * float * int * int)) list
(** BLASTN one-at-a-time costs for the parameters of the paper's
    Figure 6, paired with the paper's row. *)

val print_fig6 : Format.formatter -> Measure.model -> unit

val run_fig7 : unit -> Optimizer.outcome list
(** Chip-resource optimization (w1=1, w2=100), all four apps. *)

val print_fig7 : Format.formatter -> Optimizer.outcome list -> unit

val changed_params : Arch.Config.t -> (string * string) list
(** Human-readable (parameter, value) pairs where a configuration
    differs from base — the rows of the paper's Figures 5 and 7. *)

val print_outcome_summary : Format.formatter -> Optimizer.outcome -> unit
