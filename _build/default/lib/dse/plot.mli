(** Minimal ASCII charts for terminal reports (miss-rate curves,
    Pareto fronts).  Purely cosmetic, no external dependencies. *)

val xy :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  Format.formatter ->
  (float * float) list ->
  unit
(** Scatter/line plot of the points (marked [*]) on a [width] x
    [height] character grid with axis ranges annotated.  Degenerate
    inputs (empty, or a single distinct value on an axis) are handled
    by padding the range. *)

val series_to_floats : (int * int) list -> (float * float) list
