type dcache_row = {
  ways : int;
  way_kb : int;
  seconds : float;
  lut_pct : int;
  bram_pct : int;
}

let row ways way_kb seconds lut_pct bram_pct =
  { ways; way_kb; seconds; lut_pct; bram_pct }

let figure2 =
  [
    row 1 1 10.71 38 47;
    row 1 2 10.64 38 48;
    row 1 4 10.60 39 51;
    row 1 8 10.54 39 56;
    row 1 16 10.50 38 68;
    row 1 32 10.22 38 90;
    row 2 1 10.58 39 49;
    row 2 2 10.55 39 51;
    row 2 4 10.53 39 56;
    row 2 8 10.50 39 68;
    row 2 16 10.22 39 90;
    row 3 1 10.56 39 51;
    row 3 2 10.54 39 55;
    row 3 4 10.51 39 62;
    row 3 8 10.45 39 79;
    row 4 1 10.55 39 53;
    row 4 2 10.53 39 58;
    row 4 4 10.50 39 68;
    row 4 8 10.22 39 90;
  ]

let figure2_optimal = row 2 16 10.22 39 90
let figure3_selected = (1, 32)

let figure4 =
  [
    ("drr", (2, 16), 261.609);
    ("frag", (2, 16), 147.869);
    ("arith", (1, 4), Float.nan); (* "No effect, as application is not data intensive" *)
  ]

type opt_summary = {
  app : string;
  base_seconds : float;
  predicted_seconds : float;
  actual_seconds : float;
  actual_lut_pct : int;
  actual_bram_pct : int;
  params : (string * string) list;
}

let figure5 =
  [
    {
      app = "blastn";
      base_seconds = 10.60;
      predicted_seconds = 9.35;
      actual_seconds = 9.37;
      actual_lut_pct = 39;
      actual_bram_pct = 90;
      params =
        [
          ("icachsetsz", "2"); ("icachlinesz", "4"); ("dcachsets", "1");
          ("dcachsetsz", "32"); ("dcachlinesz", "4"); ("dcachreplace", "LRU");
          ("fastjump", "off"); ("icchold", "off"); ("divider", "none");
          ("multiplier", "32x32");
        ];
    };
    {
      app = "drr";
      base_seconds = 297.98;
      predicted_seconds = 181.35;
      actual_seconds = 240.20;
      actual_lut_pct = 39;
      actual_bram_pct = 90;
      params =
        [
          ("icachsetsz", "2"); ("icachlinesz", "4"); ("dcachsets", "2");
          ("dcachsetsz", "16"); ("dcachlinesz", "4"); ("dcachreplace", "LRR");
          ("fastjump", "off"); ("icchold", "off"); ("divider", "none");
          ("multiplier", "32x32");
        ];
    };
    {
      app = "frag";
      base_seconds = 150.75;
      predicted_seconds = 139.20;
      actual_seconds = 141.48;
      actual_lut_pct = 47;
      actual_bram_pct = 93;
      params =
        [
          ("icachsetsz", "4"); ("icachlinesz", "4"); ("dcachsets", "2");
          ("dcachsetsz", "16"); ("dcachlinesz", "4"); ("dcachreplace", "LRU");
          ("fastjump", "off"); ("icchold", "off"); ("divider", "none");
          ("multiplier", "32x32");
        ];
    };
    {
      app = "arith";
      base_seconds = 32.33;
      predicted_seconds = 30.23;
      actual_seconds = 30.23;
      actual_lut_pct = 40;
      actual_bram_pct = 48;
      params =
        [
          ("icachsetsz", "4"); ("icachlinesz", "4"); ("dcachsets", "1");
          ("dcachsetsz", "1"); ("dcachlinesz", "8"); ("dcachreplace", "rnd");
          ("fastjump", "off"); ("icchold", "off"); ("divider", "radix2");
          ("multiplier", "32x32");
        ];
    };
  ]

let figure6 =
  [
    ("icachesetsz2", 10.60, 39, 48);
    ("icachelinesz4", 10.60, 38, 51);
    ("dcachesetsz32", 10.22, 38, 90);
    ("dcachelinesz4", 10.58, 39, 51);
    ("nofastjump", 10.60, 38, 51);
    ("noicchold", 10.24, 39, 51);
    ("nodivider", 10.60, 37, 51);
    ("multiplierm32x32", 10.12, 40, 51);
  ]

let figure7 =
  [
    {
      app = "blastn";
      base_seconds = 10.60;
      predicted_seconds = 13.86;
      actual_seconds = 13.85;
      actual_lut_pct = 37;
      actual_bram_pct = 48;
      params =
        [
          ("icachsetsz", "2"); ("icachlinesz", "4"); ("dcachsetsz", "2");
          ("dcachlinesz", "4"); ("fastjump", "off"); ("icchold", "off");
          ("divider", "none"); ("registers", "28*"); ("multiplier", "iter");
        ];
    };
    {
      app = "drr";
      base_seconds = 297.98;
      predicted_seconds = 355.82;
      actual_seconds = 347.91;
      actual_lut_pct = 37;
      actual_bram_pct = 48;
      params =
        [
          ("icachsetsz", "2"); ("icachlinesz", "4"); ("dcachsetsz", "2");
          ("dcachlinesz", "4"); ("fastjump", "off"); ("icchold", "off");
          ("divider", "none"); ("registers", "31*"); ("multiplier", "iter");
        ];
    };
    {
      app = "frag";
      base_seconds = 150.75;
      predicted_seconds = 153.19;
      actual_seconds = 151.40;
      actual_lut_pct = 36;
      actual_bram_pct = 48;
      params =
        [
          ("icachsetsz", "4"); ("icachlinesz", "4"); ("dcachsetsz", "1");
          ("dcachlinesz", "4"); ("fastjump", "off"); ("icchold", "off");
          ("divider", "none"); ("registers", "8"); ("multiplier", "iter");
        ];
    };
    {
      app = "arith";
      base_seconds = 32.33;
      predicted_seconds = 44.08;
      actual_seconds = 44.08;
      actual_lut_pct = 38;
      actual_bram_pct = 48;
      params =
        [
          ("icachsetsz", "2"); ("icachlinesz", "4"); ("dcachsetsz", "2");
          ("dcachlinesz", "8"); ("fastjump", "off"); ("icchold", "off");
          ("divider", "radix2"); ("registers", "30*"); ("multiplier", "iter");
        ];
    };
  ]

let runtime_gain_range = (6.15, 19.39)
