lib/dse/exhaustive.mli: Apps Arch Cost
