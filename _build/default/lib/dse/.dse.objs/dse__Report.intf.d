lib/dse/report.mli: Apps Arch Exhaustive Format Measure Optimizer
