lib/dse/exhaustive.ml: Arch Cost List Measure Synth
