lib/dse/sched_tuning.ml: Apps Arch Array Format Generic List Minic Sim String
