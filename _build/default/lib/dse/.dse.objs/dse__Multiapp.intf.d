lib/dse/multiapp.mli: Apps Arch Cost Format
