lib/dse/energy.mli: Apps Arch Cost Format Sim
