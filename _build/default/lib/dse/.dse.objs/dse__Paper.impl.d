lib/dse/paper.ml: Float
