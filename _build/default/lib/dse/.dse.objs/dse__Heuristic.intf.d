lib/dse/heuristic.mli: Apps Arch Cost Format Sim
