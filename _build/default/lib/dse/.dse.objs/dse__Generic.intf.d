lib/dse/generic.mli:
