lib/dse/energy.ml: Apps Arch Cost Format Formulate Hashtbl List Measure Optim Report Sim String Synth
