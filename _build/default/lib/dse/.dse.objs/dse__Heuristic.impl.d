lib/dse/heuristic.ml: Arch Cost Format List Measure Optimizer Printf Sim Synth
