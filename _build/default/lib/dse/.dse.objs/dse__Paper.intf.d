lib/dse/paper.mli:
