lib/dse/formulate.ml: Arch Array Cost Hashtbl List Measure Optim
