lib/dse/sched_tuning.mli: Format Generic
