lib/dse/ablation.mli: Apps Cost Format Formulate Measure Optimizer
