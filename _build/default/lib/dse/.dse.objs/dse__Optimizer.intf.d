lib/dse/optimizer.mli: Apps Arch Cost Fmt Formulate Measure Optim
