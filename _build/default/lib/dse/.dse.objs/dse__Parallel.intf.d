lib/dse/parallel.mli:
