lib/dse/plot.ml: Array Format List Printf String
