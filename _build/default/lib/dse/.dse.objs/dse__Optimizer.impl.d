lib/dse/optimizer.ml: Arch Cost Fmt Formulate List Measure Optim Synth
