lib/dse/formulate.mli: Arch Cost Measure Optim
