lib/dse/generic.ml: Array Fun List Optim
