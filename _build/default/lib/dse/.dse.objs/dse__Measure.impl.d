lib/dse/measure.ml: Apps Arch Cost Hashtbl Lazy List Parallel Synth
