lib/dse/ablation.ml: Apps Arch Cost Format Formulate List Measure Optimizer Report String Synth
