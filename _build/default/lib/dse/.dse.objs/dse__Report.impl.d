lib/dse/report.ml: Apps Arch Cost Exhaustive Float Format List Measure Optimizer Option Paper Printf String Synth
