lib/dse/convex.mli: Arch Cost Format Measure Optimizer
