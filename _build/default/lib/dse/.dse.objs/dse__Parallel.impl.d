lib/dse/parallel.ml: Array Atomic Domain List
