lib/dse/convex.ml: Apps Arch Cost Format Formulate List Measure Optim Optimizer
