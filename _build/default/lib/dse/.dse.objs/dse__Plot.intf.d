lib/dse/plot.mli: Format
