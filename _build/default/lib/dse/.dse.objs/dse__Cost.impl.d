lib/dse/cost.ml: Fmt Synth
