lib/dse/cost.mli: Fmt Synth
