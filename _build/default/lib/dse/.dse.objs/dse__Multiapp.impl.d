lib/dse/multiapp.ml: Apps Arch Cost Format Formulate List Measure Optim Printf Report String
