lib/dse/measure.mli: Apps Arch Cost
