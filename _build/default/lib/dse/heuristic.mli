(** Heuristic design-space exploration baselines.

    The related work the paper positions against explores the space
    with heuristics (Fischer et al.'s DSE, Gordon-Ross et al.'s
    hierarchical cache search).  Two classic baselines, each counting
    the builds (configuration measurements) it spends — the currency of
    the paper's scalability argument, since a real build costs ~30
    minutes of synthesis plus an application run:

    - {b random search}: sample valid configurations uniformly;
    - {b coordinate descent}: from the base configuration, repeatedly
      sweep every parameter, adopting the best value while holding the
      others fixed, until a full sweep improves nothing.

    Both optimize the same weighted objective the paper's BINLP does,
    and reject configurations that do not fit the device. *)

type result = {
  config : Arch.Config.t;
  cost : Cost.t;
  objective : float;     (** weighted objective vs the base *)
  builds : int;          (** configurations measured *)
}

val random_search :
  ?seed:int -> builds:int -> weights:Cost.weights -> Apps.Registry.t -> result

val coordinate_descent :
  ?max_sweeps:int -> weights:Cost.weights -> Apps.Registry.t -> result

val paper_method : weights:Cost.weights -> Apps.Registry.t -> result
(** The paper's pipeline, packaged with its build count (52
    one-at-a-time probes + replacement references + the verification
    build) for comparison. *)

val random_config : Sim.Rng.t -> Arch.Config.t
(** A uniformly random structurally-valid configuration. *)

val print_comparison : Format.formatter -> string -> result list -> unit
(** [print_comparison ppf app_name [paper; descent; random...]] *)
