(** Cost vectors and the paper's normalization conventions.

    Application runtime and chip resources have very different units;
    the paper normalizes both as percentages and combines them with
    weights [w1] (runtime) and [w2] (chip resources):

    - [rho]: runtime delta as a percentage {e of the base runtime};
    - [lambda]: LUT delta in percentage points {e of the device};
    - [beta]: BRAM delta in percentage points {e of the device}. *)

type t = { seconds : float; resources : Synth.Resource.t }

type deltas = { rho : float; lambda : float; beta : float }

val deltas : base:t -> t -> deltas

type weights = { w1 : float; w2 : float }

val runtime_weights : weights
(** w1 = 100, w2 = 1 — the paper's Section 6.1 runtime optimization. *)

val resource_weights : weights
(** w1 = 1, w2 = 100 — the paper's Section 6.2 chip optimization. *)

val runtime_only : weights
(** w1 = 100, w2 = 0 — the Section 5 dcache study. *)

val objective : weights -> deltas -> float
(** [w1 rho + w2 (lambda + beta)]. *)

val headroom_luts : t -> float
(** Unused LUTs after this configuration, in percent of the device
    (the paper's L). *)

val headroom_brams : t -> float
(** The paper's B. *)

val pp : t Fmt.t
