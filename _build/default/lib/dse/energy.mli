(** Power and energy extension — the paper's Section 7 future work
    ("we can include power and energy optimizations").

    A simple but structurally faithful FPGA energy model:

    - {b static power} grows with occupied LUTs and BRAMs (leakage and
      clock-tree load), so slower configurations pay static energy for
      longer;
    - {b dynamic energy} is event-based, charged from the profiler's
      counters: per instruction, per cache access (larger and wider
      caches burn more per access), per line fill from external memory,
      per multiply/divide (bigger array multipliers switch more).

    This creates the classic energy tradeoff the literature the paper
    cites (Gordon-Ross et al.) explores: growing a cache cuts miss
    energy and runtime but raises per-access energy and static power —
    the energy-optimal cache is in the middle.

    The optimizer is extended with a third objective weight [w3] on
    energy deltas, keeping the same one-at-a-time model, constraints
    and exact solver. *)

type measurement = {
  seconds : float;
  millijoules : float;
  average_milliwatts : float;
  cost : Cost.t;
}

val static_milliwatts : Arch.Config.t -> float
val dynamic_nanojoules_per_event : Arch.Config.t -> Sim.Profiler.t -> float
(** Total dynamic energy of a profiled execution, in nanojoules. *)

val measure : Apps.Registry.t -> Arch.Config.t -> measurement

type weights = { w1 : float; w2 : float; w3 : float }
(** runtime%%, chip%%, energy%% weights. *)

val energy_weights : weights
(** w1 = 1, w2 = 1, w3 = 100: minimize energy first. *)

type outcome = {
  base : measurement;
  selected : Arch.Param.var list;
  config : Arch.Config.t;
  actual : measurement;
  runtime_change_percent : float;
  energy_change_percent : float;
}

val optimize : weights:weights -> Apps.Registry.t -> outcome

val print_outcome : Format.formatter -> outcome -> unit
