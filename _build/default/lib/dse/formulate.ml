type variant = {
  lut_nonlinear : bool;
  bram_linear : bool;
}

let paper_variant = { lut_nonlinear = false; bram_linear = false }

(* Solver variable j <-> model row j. *)
let index_table model =
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun j (r : Measure.row) -> Hashtbl.add tbl r.Measure.var.Arch.Param.index j)
    model.Measure.rows;
  tbl

let solver_var tbl paper_index = Hashtbl.find_opt tbl paper_index

(* The paper's ways terms: x1,x2,x3 carry multipliers 1,2,3 on top of
   the implicit single base way. *)
let ways_factor tbl indices =
  let coeffs =
    List.filteri (fun _ _ -> true) indices
    |> List.mapi (fun k i -> (i, float_of_int (k + 1)))
    |> List.filter_map (fun (i, m) ->
           match solver_var tbl i with Some j -> Some (j, m) | None -> None)
  in
  { Optim.Binlp.coeffs; const = 1.0 }

let lin_of tbl model get indices =
  let coeffs =
    List.filter_map
      (fun i ->
        match solver_var tbl i with
        | Some j ->
            let r = List.nth model.Measure.rows j in
            Some (j, get r.Measure.deltas)
        | None -> None)
      indices
  in
  { Optim.Binlp.coeffs; const = 0.0 }

let range a b = List.init (b - a + 1) (fun k -> a + k)

(* Resource expression (in percentage points of the device) for one
   metric, as constraint terms.  Nonlinear: per-cache products of the
   ways factor and the per-way size deltas, plus everything else
   linear; the paper's Section 4 FPGA resource constraints. *)
let resource_terms tbl model get ~nonlinear =
  if not nonlinear then [ Optim.Binlp.Lin (lin_of tbl model get (range 1 52)) ]
  else
    [
      Optim.Binlp.Prod (ways_factor tbl [ 1; 2; 3 ], lin_of tbl model get (range 4 8));
      Optim.Binlp.Prod
        (ways_factor tbl [ 12; 13; 14 ], lin_of tbl model get (range 15 19));
      Optim.Binlp.Lin
        (lin_of tbl model get (range 1 3 @ range 9 14 @ range 20 52));
    ]

let coupling tbl antecedent consequents =
  (* antecedent <= sum of consequents, i.e. x_a - sum x_c <= 0. *)
  match solver_var tbl antecedent with
  | None -> None
  | Some ja ->
      let cons = List.filter_map (solver_var tbl) consequents in
      if cons = [] then
        (* No way to satisfy the coupling: forbid the antecedent. *)
        Some
          (Optim.Binlp.linear
             { Optim.Binlp.coeffs = [ (ja, 1.0) ]; const = 0.0 }
             Optim.Binlp.Le 0.0)
      else
        Some
          (Optim.Binlp.linear
             {
               Optim.Binlp.coeffs = (ja, 1.0) :: List.map (fun j -> (j, -1.0)) cons;
               const = 0.0;
             }
             Optim.Binlp.Le 0.0)

let make_custom ~objective ?(variant = paper_variant) model =
  let tbl = index_table model in
  let rows = Array.of_list model.Measure.rows in
  let nvars = Array.length rows in
  let objective = Array.map objective rows in
  let groups =
    List.filter_map
      (fun g ->
        let members =
          List.filter_map
            (fun v -> solver_var tbl v.Arch.Param.index)
            (Arch.Param.group_members g)
        in
        if List.length members >= 2 then Some members else None)
      Arch.Param.groups
  in
  let couplings =
    List.filter_map
      (fun c -> c)
      [
        coupling tbl 10 [ 1 ];             (* icache LRR needs 2 ways *)
        coupling tbl 11 [ 1; 2; 3 ];       (* icache LRU needs multiway *)
        coupling tbl 21 [ 12 ];            (* dcache LRR *)
        coupling tbl 22 [ 12; 13; 14 ];    (* dcache LRU *)
      ]
  in
  let lut_terms =
    resource_terms tbl model
      (fun d -> d.Cost.lambda)
      ~nonlinear:variant.lut_nonlinear
  in
  let bram_terms =
    resource_terms tbl model
      (fun d -> d.Cost.beta)
      ~nonlinear:(not variant.bram_linear)
  in
  let resource_constraints =
    [
      { Optim.Binlp.terms = lut_terms; rel = Optim.Binlp.Le;
        bound = Cost.headroom_luts model.Measure.base };
      { Optim.Binlp.terms = bram_terms; rel = Optim.Binlp.Le;
        bound = Cost.headroom_brams model.Measure.base };
    ]
  in
  {
    Optim.Binlp.nvars;
    objective;
    groups;
    constraints = couplings @ resource_constraints;
  }

let make ?variant (weights : Cost.weights) model =
  make_custom
    ~objective:(fun (r : Measure.row) -> Cost.objective weights r.Measure.deltas)
    ?variant model

let vars_of_solution model (s : Optim.Binlp.solution) =
  List.filteri (fun j _ -> s.Optim.Binlp.x.(j)) model.Measure.rows
  |> List.map (fun (r : Measure.row) -> r.Measure.var)
  |> List.sort (fun a b -> compare a.Arch.Param.index b.Arch.Param.index)

let predicted_deltas ?(variant = paper_variant) model vars =
  let tbl = index_table model in
  let nvars = List.length model.Measure.rows in
  let x = Array.make nvars false in
  List.iter
    (fun (v : Arch.Param.var) ->
      match solver_var tbl v.Arch.Param.index with
      | Some j -> x.(j) <- true
      | None -> invalid_arg "Formulate.predicted_deltas: variable not in model")
    vars;
  let eval terms =
    List.fold_left
      (fun acc t ->
        acc
        +.
        match t with
        | Optim.Binlp.Lin l -> Optim.Binlp.eval_lin l x
        | Optim.Binlp.Prod (l1, l2) ->
            Optim.Binlp.eval_lin l1 x *. Optim.Binlp.eval_lin l2 x)
      0.0 terms
  in
  let rho =
    List.fold_left
      (fun acc (r : Measure.row) ->
        if x.(Hashtbl.find tbl r.Measure.var.Arch.Param.index) then
          acc +. r.Measure.deltas.Cost.rho
        else acc)
      0.0 model.Measure.rows
  in
  let lambda =
    eval
      (resource_terms tbl model (fun d -> d.Cost.lambda)
         ~nonlinear:variant.lut_nonlinear)
  in
  let beta =
    eval
      (resource_terms tbl model (fun d -> d.Cost.beta)
         ~nonlinear:(not variant.bram_linear))
  in
  { Cost.rho; lambda; beta }
