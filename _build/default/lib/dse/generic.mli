(** The paper's technique, abstracted — its conclusion proposes
    "evaluat[ing] our technique on other configuration and feature
    management problems".

    A {!DOMAIN} supplies a base configuration, SOS1 option groups, a
    black-box cost measurement over named dimensions, and optional
    per-dimension budgets.  {!Make} then runs the paper's method
    unchanged: perturb one option at a time, record percent deltas per
    dimension, minimize the weighted delta sum under the SOS1 and
    budget constraints with the exact solver, decode, and verify by a
    final measurement.  (Domain-specific nonlinear couplings like the
    LEON cache products are a property of that domain's formulation;
    the generic path uses linear budgets.) *)

module type DOMAIN = sig
  type config

  val name : string
  val base : config
  val dimension_names : string array
  (** Cost dimension labels, e.g. [|"cycles"; "bytes"|]. *)

  val measure : config -> float array
  (** Raw positive costs per dimension. *)

  val feasible : config -> bool

  type group = {
    label : string;
    options : (string * (config -> config)) list;
        (** alternative values; "keep the base value" is implicit *)
  }

  val groups : group list

  val budgets : (int * float) array
  (** [(dimension, cap)]: the summed raw cost of the selection must not
      exceed [cap] in that dimension. *)
end

module Make (D : DOMAIN) : sig
  type row = {
    group : string;
    option_label : string;
    deltas : float array;  (** percent per dimension vs base *)
  }

  type outcome = {
    base_costs : float array;
    rows : row list;
    selected : (string * string) list;  (** (group, option) pairs *)
    config : D.config;
    predicted : float array;            (** summed percent deltas *)
    actual : float array;               (** measured percent deltas *)
  }

  val optimize : weights:float array -> outcome
  (** [weights] has one entry per dimension.
      @raise Failure when no feasible selection exists. *)
end
