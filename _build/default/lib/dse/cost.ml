type t = { seconds : float; resources : Synth.Resource.t }

type deltas = { rho : float; lambda : float; beta : float }

let deltas ~base c =
  {
    rho = 100.0 *. (c.seconds -. base.seconds) /. base.seconds;
    lambda =
      Synth.Resource.lut_percent c.resources
      -. Synth.Resource.lut_percent base.resources;
    beta =
      Synth.Resource.bram_percent c.resources
      -. Synth.Resource.bram_percent base.resources;
  }

type weights = { w1 : float; w2 : float }

let runtime_weights = { w1 = 100.0; w2 = 1.0 }
let resource_weights = { w1 = 1.0; w2 = 100.0 }
let runtime_only = { w1 = 100.0; w2 = 0.0 }

let objective w d = (w.w1 *. d.rho) +. (w.w2 *. (d.lambda +. d.beta))

let headroom_luts c = 100.0 -. Synth.Resource.lut_percent c.resources
let headroom_brams c = 100.0 -. Synth.Resource.bram_percent c.resources

let pp ppf c =
  Fmt.pf ppf "%.3f s, %a" c.seconds Synth.Resource.pp c.resources
