type fixup = Fix_branch of Insn.cond | Fix_call

type t = {
  mutable code : Insn.t list;   (* reversed *)
  mutable ninsns : int;
  mutable fixups : (int * string * fixup) list;
  labels : (string, int) Hashtbl.t;
  data : Buffer.t;
  mutable symbols : (string * int) list;
}

let create () =
  {
    code = [];
    ninsns = 0;
    fixups = [];
    labels = Hashtbl.create 16;
    data = Buffer.create 1024;
    symbols = [];
  }

let emit t insn =
  t.code <- insn :: t.code;
  t.ninsns <- t.ninsns + 1

let here t = t.ninsns

let label t name =
  if Hashtbl.mem t.labels name then
    failwith (Printf.sprintf "Asm.label: duplicate label %S" name);
  Hashtbl.add t.labels name t.ninsns

let add_fixup t name kind =
  t.fixups <- (t.ninsns, name, kind) :: t.fixups

let bcc t cond name =
  add_fixup t name (Fix_branch cond);
  emit t (Insn.Branch { cond; target = -1 })

let ba t name = bcc t Insn.Always name

let call t name =
  add_fixup t name Fix_call;
  emit t (Insn.Call { target = -1 })

let align4 t =
  while Buffer.length t.data land 3 <> 0 do
    Buffer.add_char t.data '\000'
  done

let define_symbol t name addr =
  if List.mem_assoc name t.symbols then
    failwith (Printf.sprintf "Asm: duplicate data symbol %S" name);
  t.symbols <- (name, addr) :: t.symbols

let data_bytes t ~name bytes =
  align4 t;
  let addr = Program.data_base + Buffer.length t.data in
  define_symbol t name addr;
  Buffer.add_bytes t.data bytes;
  addr

let data_words t ~name words =
  let b = Bytes.create (4 * Array.length words) in
  Array.iteri (fun k w -> Bytes.set_int32_le b (4 * k) (Int32.of_int w)) words;
  data_bytes t ~name b

let data_zero t ~name n = data_bytes t ~name (Bytes.make n '\000')

let mov t op rd = emit t (Insn.Alu { op = Insn.Or; cc = false; rd; rs1 = Reg.g0; op2 = op })

(* A 13-bit signed immediate, as in SPARC format-3 instructions. *)
let fits_simm13 v = v >= -4096 && v <= 4095

let set32 t v rd =
  if fits_simm13 v then mov t (Insn.Imm v) rd
  else begin
    let v = v land 0xFFFFFFFF in
    let hi = v lsr 11 and lo = v land 0x7FF in
    emit t (Insn.Sethi { rd; imm = hi });
    if lo <> 0 then
      emit t (Insn.Alu { op = Insn.Or; cc = false; rd; rs1 = rd; op2 = Insn.Imm lo })
  end

let ret t = emit t (Insn.Jmpl { rd = Reg.g0; rs1 = Reg.ra; op2 = Insn.Imm 1 })

let finish t ~entry =
  let code = Array.of_list (List.rev t.code) in
  let resolve name =
    match Hashtbl.find_opt t.labels name with
    | Some k -> k
    | None -> failwith (Printf.sprintf "Asm.finish: undefined label %S" name)
  in
  let fix (pos, name, kind) =
    let target = resolve name in
    code.(pos) <-
      (match kind with
      | Fix_branch cond -> Insn.Branch { cond; target }
      | Fix_call -> Insn.Call { target })
  in
  List.iter fix t.fixups;
  {
    Program.code;
    entry;
    data = Buffer.to_bytes t.data;
    symbols = t.symbols;
  }
