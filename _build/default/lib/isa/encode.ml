exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* Major opcodes (6 bits).  ALU operations occupy two 8-slot banks
   (plain and condition-code-setting); everything else has one slot. *)
let op_smul = 0x02
let op_umul = 0x03
let op_smul_cc = 0x04
let op_umul_cc = 0x05
let op_sdiv = 0x06
let op_udiv = 0x07
let op_ld_b = 0x08
let op_ld_bs = 0x09
let op_ld_h = 0x0A
let op_ld_hs = 0x0B
let op_ld_w = 0x0C
let op_st_b = 0x0D
let op_st_h = 0x0E
let op_st_w = 0x0F
let op_jmpl = 0x10
let op_save = 0x11
let op_restore = 0x12
let op_sethi = 0x13
let op_branch = 0x14
let op_call = 0x15
let op_nop = 0x16
let op_halt = 0x17

let alu_op_code = function
  | Insn.Add -> 0
  | Insn.Sub -> 1
  | Insn.And -> 2
  | Insn.Or -> 3
  | Insn.Xor -> 4
  | Insn.Sll -> 5
  | Insn.Srl -> 6
  | Insn.Sra -> 7

let alu_op_of_code = function
  | 0 -> Insn.Add
  | 1 -> Insn.Sub
  | 2 -> Insn.And
  | 3 -> Insn.Or
  | 4 -> Insn.Xor
  | 5 -> Insn.Sll
  | 6 -> Insn.Srl
  | 7 -> Insn.Sra
  | c -> error "invalid alu sub-opcode %d" c

let cond_code = function
  | Insn.Always -> 0
  | Insn.Eq -> 1
  | Insn.Ne -> 2
  | Insn.Gt -> 3
  | Insn.Le -> 4
  | Insn.Ge -> 5
  | Insn.Lt -> 6
  | Insn.Gu -> 7
  | Insn.Leu -> 8

let cond_of_code = function
  | 0 -> Insn.Always
  | 1 -> Insn.Eq
  | 2 -> Insn.Ne
  | 3 -> Insn.Gt
  | 4 -> Insn.Le
  | 5 -> Insn.Ge
  | 6 -> Insn.Lt
  | 7 -> Insn.Gu
  | 8 -> Insn.Leu
  | c -> error "invalid condition code %d" c

let check_reg r =
  if r < 0 || r > 31 then error "register %d out of range" r

let op_alu_base = 0x20 (* 0x20..0x27: Add..Sra, no cc *)
let op_alu_cc_base = 0x28 (* 0x28..0x2F: Add..Sra, cc *)

let encode insn =
  let f3 op rd rs1 op2 =
    check_reg rd;
    check_reg rs1;
    let base = (op lsl 26) lor (rd lsl 21) lor (rs1 lsl 16) in
    match op2 with
    | Insn.Reg rs2 ->
        check_reg rs2;
        base lor rs2
    | Insn.Imm v ->
        if v < -16384 || v > 16383 then error "immediate %d exceeds simm15" v;
        base lor (1 lsl 15) lor (v land 0x7FFF)
  in
  let word =
    match insn with
    | Insn.Alu { op; cc; rd; rs1; op2 } ->
        let major = (if cc then op_alu_cc_base else op_alu_base) + alu_op_code op in
        f3 major rd rs1 op2
    | Insn.Mul { signed; cc; rd; rs1; op2 } ->
        let major =
          match (signed, cc) with
          | true, false -> op_smul
          | false, false -> op_umul
          | true, true -> op_smul_cc
          | false, true -> op_umul_cc
        in
        f3 major rd rs1 op2
    | Insn.Div { signed; rd; rs1; op2 } ->
        f3 (if signed then op_sdiv else op_udiv) rd rs1 op2
    | Insn.Load { width; signed; rd; rs1; op2 } ->
        let major =
          match (width, signed) with
          | Insn.Byte, false -> op_ld_b
          | Insn.Byte, true -> op_ld_bs
          | Insn.Half, false -> op_ld_h
          | Insn.Half, true -> op_ld_hs
          | Insn.Word, _ -> op_ld_w
        in
        f3 major rd rs1 op2
    | Insn.Store { width; rs; rs1; op2 } ->
        let major =
          match width with
          | Insn.Byte -> op_st_b
          | Insn.Half -> op_st_h
          | Insn.Word -> op_st_w
        in
        f3 major rs rs1 op2
    | Insn.Jmpl { rd; rs1; op2 } -> f3 op_jmpl rd rs1 op2
    | Insn.Save { rd; rs1; op2 } -> f3 op_save rd rs1 op2
    | Insn.Restore { rd; rs1; op2 } -> f3 op_restore rd rs1 op2
    | Insn.Sethi { rd; imm } ->
        check_reg rd;
        if imm < 0 || imm > 0x1FFFFF then error "sethi immediate %d exceeds 21 bits" imm;
        (op_sethi lsl 26) lor (rd lsl 21) lor imm
    | Insn.Branch { cond; target } ->
        if target < 0 || target > 0x3FFFFF then
          error "branch target %d exceeds 22 bits" target;
        (op_branch lsl 26) lor (cond_code cond lsl 22) lor target
    | Insn.Call { target } ->
        if target < 0 || target > 0x3FFFFFF then
          error "call target %d exceeds 26 bits" target;
        (op_call lsl 26) lor target
    | Insn.Nop -> op_nop lsl 26
    | Insn.Halt -> op_halt lsl 26
  in
  Int32.of_int (word land 0xFFFFFFFF)

let decode word =
  let w = Int32.to_int word land 0xFFFFFFFF in
  let op = w lsr 26 in
  let rd = (w lsr 21) land 0x1F in
  let rs1 = (w lsr 16) land 0x1F in
  let op2 =
    if (w lsr 15) land 1 = 1 then
      let v = w land 0x7FFF in
      Insn.Imm (if v land 0x4000 <> 0 then v - 0x8000 else v)
    else Insn.Reg (w land 0x1F)
  in
  if op >= op_alu_base && op < op_alu_base + 8 then
    Insn.Alu { op = alu_op_of_code (op - op_alu_base); cc = false; rd; rs1; op2 }
  else if op >= op_alu_cc_base && op < op_alu_cc_base + 8 then
    Insn.Alu { op = alu_op_of_code (op - op_alu_cc_base); cc = true; rd; rs1; op2 }
  else if op = op_smul then Insn.Mul { signed = true; cc = false; rd; rs1; op2 }
  else if op = op_umul then Insn.Mul { signed = false; cc = false; rd; rs1; op2 }
  else if op = op_smul_cc then Insn.Mul { signed = true; cc = true; rd; rs1; op2 }
  else if op = op_umul_cc then Insn.Mul { signed = false; cc = true; rd; rs1; op2 }
  else if op = op_sdiv then Insn.Div { signed = true; rd; rs1; op2 }
  else if op = op_udiv then Insn.Div { signed = false; rd; rs1; op2 }
  else if op = op_ld_b then Insn.Load { width = Insn.Byte; signed = false; rd; rs1; op2 }
  else if op = op_ld_bs then Insn.Load { width = Insn.Byte; signed = true; rd; rs1; op2 }
  else if op = op_ld_h then Insn.Load { width = Insn.Half; signed = false; rd; rs1; op2 }
  else if op = op_ld_hs then Insn.Load { width = Insn.Half; signed = true; rd; rs1; op2 }
  else if op = op_ld_w then Insn.Load { width = Insn.Word; signed = false; rd; rs1; op2 }
  else if op = op_st_b then Insn.Store { width = Insn.Byte; rs = rd; rs1; op2 }
  else if op = op_st_h then Insn.Store { width = Insn.Half; rs = rd; rs1; op2 }
  else if op = op_st_w then Insn.Store { width = Insn.Word; rs = rd; rs1; op2 }
  else if op = op_jmpl then Insn.Jmpl { rd; rs1; op2 }
  else if op = op_save then Insn.Save { rd; rs1; op2 }
  else if op = op_restore then Insn.Restore { rd; rs1; op2 }
  else if op = op_sethi then Insn.Sethi { rd; imm = w land 0x1FFFFF }
  else if op = op_branch then
    Insn.Branch { cond = cond_of_code ((w lsr 22) land 0xF); target = w land 0x3FFFFF }
  else if op = op_call then Insn.Call { target = w land 0x3FFFFFF }
  else if op = op_nop then Insn.Nop
  else if op = op_halt then Insn.Halt
  else error "invalid opcode %#x" op

(* --- program images --- *)

let magic = 0x4C4E5543 (* "CUNL" *)

let encode_program (p : Program.t) =
  let buf = Buffer.create 4096 in
  let u32 v = Buffer.add_int32_le buf (Int32.of_int (v land 0xFFFFFFFF)) in
  u32 magic;
  u32 p.Program.entry;
  u32 (Array.length p.Program.code);
  Array.iter (fun insn -> Buffer.add_int32_le buf (encode insn)) p.Program.code;
  u32 (Bytes.length p.Program.data);
  Buffer.add_bytes buf p.Program.data;
  u32 (List.length p.Program.symbols);
  List.iter
    (fun (name, addr) ->
      u32 (String.length name);
      Buffer.add_string buf name;
      u32 addr)
    p.Program.symbols;
  Buffer.to_bytes buf

let decode_program bytes =
  let pos = ref 0 in
  let need n =
    if !pos + n > Bytes.length bytes then error "truncated program image"
  in
  let u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le bytes !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  if u32 () <> magic then error "bad magic";
  let entry = u32 () in
  let ncode = u32 () in
  let code =
    Array.init ncode (fun _ ->
        need 4;
        let w = Bytes.get_int32_le bytes !pos in
        pos := !pos + 4;
        decode w)
  in
  let ndata = u32 () in
  need ndata;
  let data = Bytes.sub bytes !pos ndata in
  pos := !pos + ndata;
  let nsyms = u32 () in
  let symbols =
    List.init nsyms (fun _ ->
        let len = u32 () in
        need len;
        let name = Bytes.sub_string bytes !pos len in
        pos := !pos + len;
        let addr = u32 () in
        (name, addr))
  in
  { Program.code; entry; data; symbols }
