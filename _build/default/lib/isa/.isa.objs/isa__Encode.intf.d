lib/isa/encode.mli: Bytes Insn Program
