lib/isa/reg.ml: Array Fmt Printf
