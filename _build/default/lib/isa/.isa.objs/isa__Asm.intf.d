lib/isa/asm.mli: Bytes Insn Program Reg
