lib/isa/program.mli: Bytes Fmt Insn
