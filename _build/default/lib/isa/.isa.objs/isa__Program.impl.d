lib/isa/program.ml: Array Bytes Fmt Insn List
