lib/isa/encode.ml: Array Buffer Bytes Insn Int32 List Printf Program String
