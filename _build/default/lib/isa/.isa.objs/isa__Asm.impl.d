lib/isa/asm.ml: Array Buffer Bytes Hashtbl Insn Int32 List Printf Program Reg
