(** The simulator's SPARC-V8-flavoured instruction set.

    Branch and call targets are instruction indices into the program's
    code array; the program counter advances in units of one
    instruction and the instruction's byte address (for instruction-
    cache modeling) is [4 * index]. *)

type operand = Reg of Reg.t | Imm of int
(** Second ALU operand: register or 13-bit-style signed immediate (we
    accept any OCaml int; the assembler checks ranges where needed). *)

type alu_op = Add | Sub | And | Or | Xor | Sll | Srl | Sra

type cond =
  | Always
  | Eq | Ne
  | Gt | Le | Ge | Lt     (** signed, from icc *)
  | Gu | Leu              (** unsigned *)

type width = Byte | Half | Word

type t =
  | Alu of { op : alu_op; cc : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Sethi of { rd : Reg.t; imm : int }
      (** rd <- imm lsl 11: sets the high 21 bits of a register; the
          low 11 bits follow with an [or] (see {!Asm.set32}) *)
  | Mul of { signed : bool; cc : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Div of { signed : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Load of { width : width; signed : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Store of { width : width; rs : Reg.t; rs1 : Reg.t; op2 : operand }
  | Branch of { cond : cond; target : int }
  | Call of { target : int }            (** writes return index to %o7 *)
  | Jmpl of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
      (** jump to register+operand (an instruction index); the current
          instruction index is written to [rd].  There are no delay
          slots, so [ret] is [Jmpl {rd=%g0; rs1=%o7; op2=Imm 1}]: it
          returns to the instruction after the call. *)
  | Save of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
      (** window save; computes rs1+op2 in the OLD window, writes rd in
          the NEW window (SPARC semantics, used for stack adjustment) *)
  | Restore of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Nop
  | Halt  (** stop simulation; not a real SPARC instruction *)

val pp : t Fmt.t
val to_string : t -> string

val uses_icc : t -> bool
(** Does the instruction read the integer condition codes? *)

val sets_icc : t -> bool

val reads : t -> Reg.t list
(** Source registers (excluding %g0 duplicates is not attempted). *)

val writes : t -> Reg.t option
(** Destination register, if any (in the current window; [Save] and
    [Restore] destinations live in the new window). *)

val is_control : t -> bool
(** Branches, calls and indirect jumps. *)
