(** A linked program: code, initialized data image and symbols.

    Code lives in its own (Harvard) address space; instruction [k] has
    byte address [4*k] for instruction-cache purposes.  Data addresses
    start at {!data_base}; the region below it is reserved for the
    register-window spill area used by window overflow/underflow
    traps. *)

type t = {
  code : Insn.t array;
  entry : int;                  (** index of the first instruction *)
  data : Bytes.t;               (** initialized data image *)
  symbols : (string * int) list;(** data symbol -> absolute address *)
}

val data_base : int
(** First address of the data segment (the spill area sits below). *)

val spill_base : int
(** Base address of the register-window spill area. *)

val data_end : t -> int
(** One past the last initialized data byte. *)

val symbol : t -> string -> int
(** Address of a data symbol.  @raise Not_found *)

val pp : t Fmt.t
(** Disassembly listing with instruction indices. *)
