type operand = Reg of Reg.t | Imm of int
type alu_op = Add | Sub | And | Or | Xor | Sll | Srl | Sra
type cond = Always | Eq | Ne | Gt | Le | Ge | Lt | Gu | Leu
type width = Byte | Half | Word

type t =
  | Alu of { op : alu_op; cc : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Sethi of { rd : Reg.t; imm : int }
  | Mul of { signed : bool; cc : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Div of { signed : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Load of { width : width; signed : bool; rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Store of { width : width; rs : Reg.t; rs1 : Reg.t; op2 : operand }
  | Branch of { cond : cond; target : int }
  | Call of { target : int }
  | Jmpl of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Save of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Restore of { rd : Reg.t; rs1 : Reg.t; op2 : operand }
  | Nop
  | Halt

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"

let cond_name = function
  | Always -> "a"
  | Eq -> "e"
  | Ne -> "ne"
  | Gt -> "g"
  | Le -> "le"
  | Ge -> "ge"
  | Lt -> "l"
  | Gu -> "gu"
  | Leu -> "leu"

let width_suffix = function Byte -> "ub" | Half -> "uh" | Word -> ""

let pp_operand ppf = function
  | Reg r -> Reg.pp ppf r
  | Imm i -> Fmt.int ppf i

let pp ppf = function
  | Alu { op; cc; rd; rs1; op2 } ->
      Fmt.pf ppf "%s%s %a, %a, %a" (alu_op_name op)
        (if cc then "cc" else "")
        Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Sethi { rd; imm } -> Fmt.pf ppf "sethi %d, %a" imm Reg.pp rd
  | Mul { signed; cc; rd; rs1; op2 } ->
      Fmt.pf ppf "%cmul%s %a, %a, %a"
        (if signed then 's' else 'u')
        (if cc then "cc" else "")
        Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Div { signed; rd; rs1; op2 } ->
      Fmt.pf ppf "%cdiv %a, %a, %a"
        (if signed then 's' else 'u')
        Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Load { width; signed; rd; rs1; op2 } ->
      Fmt.pf ppf "ld%s%s [%a + %a], %a"
        (if signed && width <> Word then "s" else "")
        (width_suffix width) Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Store { width; rs; rs1; op2 } ->
      Fmt.pf ppf "st%s %a, [%a + %a]"
        (match width with Byte -> "b" | Half -> "h" | Word -> "")
        Reg.pp rs Reg.pp rs1 pp_operand op2
  | Branch { cond; target } -> Fmt.pf ppf "b%s .%d" (cond_name cond) target
  | Call { target } -> Fmt.pf ppf "call .%d" target
  | Jmpl { rd; rs1; op2 } ->
      Fmt.pf ppf "jmpl %a + %a, %a" Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Save { rd; rs1; op2 } ->
      Fmt.pf ppf "save %a, %a, %a" Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Restore { rd; rs1; op2 } ->
      Fmt.pf ppf "restore %a, %a, %a" Reg.pp rs1 pp_operand op2 Reg.pp rd
  | Nop -> Fmt.string ppf "nop"
  | Halt -> Fmt.string ppf "halt"

let to_string t = Fmt.str "%a" pp t
let uses_icc = function Branch { cond; _ } -> cond <> Always | _ -> false

let sets_icc = function
  | Alu { cc; _ } | Mul { cc; _ } -> cc
  | _ -> false

let operand_reads = function Reg r -> [ r ] | Imm _ -> []

let reads = function
  | Alu { rs1; op2; _ }
  | Mul { rs1; op2; _ }
  | Div { rs1; op2; _ }
  | Load { rs1; op2; _ }
  | Jmpl { rs1; op2; _ }
  | Save { rs1; op2; _ }
  | Restore { rs1; op2; _ } ->
      rs1 :: operand_reads op2
  | Store { rs; rs1; op2; _ } -> rs :: rs1 :: operand_reads op2
  | Sethi _ | Branch _ | Call _ | Nop | Halt -> []

let writes = function
  | Alu { rd; _ }
  | Mul { rd; _ }
  | Div { rd; _ }
  | Load { rd; _ }
  | Jmpl { rd; _ }
  | Save { rd; _ }
  | Restore { rd; _ }
  | Sethi { rd; _ } ->
      if rd = Reg.g0 then None else Some rd
  | Call _ -> Some Reg.ra
  | Store _ | Branch _ | Nop | Halt -> None

let is_control = function
  | Branch _ | Call _ | Jmpl _ -> true
  | Alu _ | Sethi _ | Mul _ | Div _ | Load _ | Store _ | Save _ | Restore _
  | Nop | Halt ->
      false
