(** Assembler eDSL.

    A mutable builder accumulates instructions and data; labels may be
    referenced before they are defined and are resolved by {!finish}.

    {[
      let a = Asm.create () in
      let buf = Asm.data_zero a ~name:"buf" 256 in
      Asm.emit a (mov (Imm 0) (Reg.o 0));
      Asm.label a "loop";
      ...
      Asm.bcc a Insn.Ne "loop";
      Asm.emit a Insn.Halt;
      let program = Asm.finish a in
      ...
    ]} *)

type t

val create : unit -> t

val emit : t -> Insn.t -> unit
val here : t -> int
(** Index the next emitted instruction will occupy. *)

(** {2 Labels (code)} *)

val label : t -> string -> unit
(** Define a code label at the current position. *)

val bcc : t -> Insn.cond -> string -> unit
(** Emit a conditional branch to a (possibly forward) label. *)

val ba : t -> string -> unit
(** Unconditional branch. *)

val call : t -> string -> unit

(** {2 Data segment} *)

val data_words : t -> name:string -> int array -> int
(** Append 32-bit little-endian words; returns the start address and
    registers the symbol. *)

val data_bytes : t -> name:string -> Bytes.t -> int
val data_zero : t -> name:string -> int -> int
(** [data_zero a ~name n] reserves [n] zeroed bytes (word-aligned). *)

(** {2 Convenience instruction builders} *)

val mov : t -> Insn.operand -> Reg.t -> unit
(** [mov a op rd] — or %g0, op, rd. *)

val set32 : t -> int -> Reg.t -> unit
(** Load an arbitrary 32-bit constant (sethi+or when out of the
    immediate range, single or otherwise). *)

val ret : t -> unit
(** Return to caller: jmpl %o7 + 1, %g0 (target is an instruction
    index, so the return lands one past the call). *)

val finish : t -> entry:int -> Program.t
(** Resolve all label references.
    @raise Failure on undefined labels. *)
