(** Binary instruction encoding.

    Instructions encode to 32-bit words (the size the instruction-cache
    model assumes).  The format is SPARC-flavoured but self-contained:

    {v
    register format   [op:6][rd:5][rs1:5][0][pad:10][rs2:5]
    immediate format  [op:6][rd:5][rs1:5][1][simm15]
    sethi             [op:6][rd:5][imm21]
    branch            [op:6][cond:4][disp22]
    call              [op:6][disp26]
    v}

    Field widths bound what is encodable: immediates must fit 15 signed
    bits (the assembler only emits 13-bit ones), branch/jump targets 22
    bits, call targets 26 bits. *)

exception Error of string

val encode : Insn.t -> int32
(** @raise Error when a field does not fit. *)

val decode : int32 -> Insn.t
(** @raise Error on invalid opcodes or field patterns. *)

val encode_program : Program.t -> Bytes.t
(** Serialize a whole program to a loadable little-endian image:
    magic, entry point, code words, data blob, and symbol table. *)

val decode_program : Bytes.t -> Program.t
(** @raise Error on malformed images. *)
