type t = {
  code : Insn.t array;
  entry : int;
  data : Bytes.t;
  symbols : (string * int) list;
}

let spill_base = 0
let data_base = 0x1000
let data_end t = data_base + Bytes.length t.data

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some a -> a
  | None -> raise Not_found

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  Array.iteri (fun k insn -> Fmt.pf ppf "%4d: %a@," k Insn.pp insn) t.code;
  Fmt.pf ppf "@]"
