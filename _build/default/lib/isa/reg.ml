type t = int

let check kind n =
  if n < 0 || n > 7 then
    invalid_arg (Printf.sprintf "Reg.%s: %d not in 0..7" kind n)

let g n = check "g" n; n
let o n = check "o" n; 8 + n
let l n = check "l" n; 16 + n
let i n = check "i" n; 24 + n
let g0 = 0
let sp = o 6
let fp = i 6
let ra = o 7
let is_windowed r = r >= 8 && r <= 31

(* Window [w]'s outs live at base [w*16], locals at [w*16+8] and ins at
   [w*16+16] (mod the file size), so ins of [w] coincide with outs of
   [w+1]; SAVE moves to window [cwp-1]. *)
let physical ~nwindows ~cwp r =
  if r < 0 || r > 31 then invalid_arg "Reg.physical: register not in 0..31"
  else if r < 8 then r
  else 8 + (((cwp * 16) + (r - 8)) mod (nwindows * 16))

let file_size ~nwindows = 8 + (nwindows * 16)

let name r =
  if r < 0 || r > 31 then invalid_arg "Reg.name: register not in 0..31"
  else
    let bank = [| 'g'; 'o'; 'l'; 'i' |].(r / 8) in
    Printf.sprintf "%%%c%d" bank (r mod 8)

let pp ppf r = Fmt.string ppf (name r)
