(** SPARC-style windowed register naming.

    Logical registers are numbered 0..31: globals %g0-%g7 (0..7), outs
    %o0-%o7 (8..15), locals %l0-%l7 (16..23), ins %i0-%i7 (24..31).
    %g0 is hardwired to zero.  The physical register file holds 8
    globals plus 16 registers per window; the ins of window [w] are the
    outs of window [w+1], so a SAVE (which decrements the current
    window pointer) makes the caller's outs appear as the callee's
    ins. *)

type t = int
(** A logical register number, 0..31. *)

val g : int -> t
val o : int -> t
val l : int -> t
val i : int -> t

val g0 : t
(** The hardwired zero register. *)

val sp : t
(** Stack pointer, %o6 by SPARC convention. *)

val fp : t
(** Frame pointer, %i6. *)

val ra : t
(** Return-address register, %o7 (written by CALL). *)

val is_windowed : t -> bool
(** True for outs/locals/ins (8..31), false for globals. *)

val physical : nwindows:int -> cwp:int -> t -> int
(** Physical register-file index of a logical register in window
    [cwp].  Globals map to 0..7; windowed registers map into
    [8 .. 8 + nwindows*16 - 1] with the SPARC overlap property:
    [physical ~cwp r_in = physical ~cwp:(cwp+1) r_out]. *)

val file_size : nwindows:int -> int
(** Number of physical registers: [8 + nwindows * 16]. *)

val name : t -> string
(** Conventional name, e.g. ["%o3"]. *)

val pp : t Fmt.t
